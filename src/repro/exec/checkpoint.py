"""Checkpoint/resume for long sweeps: an append-only JSONL cell journal.

A multi-hour chaos campaign that dies at cell 900/1000 should not pay
for the first 900 again.  :class:`CheckpointJournal` makes every grid
restartable:

* each completed cell is appended as **one JSON line** —
  ``{"key": ..., "label": ..., "payload": ...}`` — written with a single
  ``write`` + ``flush`` + ``fsync``, so a crash can at worst truncate
  the final line (which :meth:`load` skips), never corrupt earlier ones;
* cells are **keyed by content, not position**: :func:`checkpoint_key`
  hashes the cell's identity (topology parameters, scenario, protocol,
  seed) with SHA-256 using the same canonical ``repr`` + unit-separator
  scheme as :func:`~repro.exec.seeding.derive_seed`, so keys are stable
  across processes, interpreter restarts and ``PYTHONHASHSEED`` values —
  the same stability contract the :class:`~repro.exec.cache.GraphCache`
  spec keys rely on;
* a resumed run loads the journal, skips every journaled cell, computes
  only the remainder, and merges in original grid order — so the final
  matrix/result is **byte-identical** to an uninterrupted run.

Payloads are JSON values.  Results that are not naturally JSON (e.g.
:class:`~repro.flooding.metrics.FloodResult` with its delivery-time
maps) ride through :func:`pack_pickle` / :func:`unpack_pickle`, which
wrap a base64 pickle in a JSON object; campaign cells use an explicit
JSON codec instead so journals stay human-inspectable.

``ChaosCampaign.run``, ``repeat_runs`` and ``run_sweep`` all accept
``checkpoint=`` (a journal path) and ``resume=True``; the CLI exposes
them as ``--checkpoint`` / ``--resume`` on the chaos and diameter
subcommands.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

import repro.obs as obs
from repro.exec.seeding import seed_key


def checkpoint_key(*parts: Any) -> str:
    """Stable SHA-256 hex key for a cell identified by ``parts``.

    Uses the canonical :func:`~repro.exec.seeding.seed_key` rendering
    with unit separators, so distinct part tuples cannot collide by
    string coincidence and the key is identical in every process.

    Examples
    --------
    >>> checkpoint_key("cell", 14, 3) == checkpoint_key("cell", 14, 3)
    True
    >>> checkpoint_key("cell", 14, 3) != checkpoint_key("cell", 14, "3")
    True
    """
    digest = hashlib.sha256()
    for part in seed_key(*parts):
        digest.update(b"\x1f")
        digest.update(part.encode("utf-8"))
    return digest.hexdigest()


def pack_pickle(value: Any) -> Dict[str, str]:
    """Wrap an arbitrary picklable value as a JSON-safe payload."""
    return {"__pickle__": base64.b64encode(pickle.dumps(value)).decode("ascii")}


def unpack_pickle(payload: Dict[str, str]) -> Any:
    """Inverse of :func:`pack_pickle`."""
    return pickle.loads(base64.b64decode(payload["__pickle__"]))


class CheckpointJournal:
    """Append-only JSONL journal of completed cells (see module doc).

    Parameters
    ----------
    path:
        Journal file location; parent directories are created on first
        append.
    fsync:
        Force each appended line to disk (default).  Disable only for
        throwaway journals where post-crash completeness does not
        matter.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._entries: Dict[str, Any] = {}
        self._labels: Dict[str, str] = {}
        self._fh = None

    # -- reading --------------------------------------------------------

    def load(self) -> int:
        """Read the journal from disk; return the number of usable cells.

        Missing files load as empty.  A truncated or corrupt trailing
        line — the signature of a crash mid-append — is skipped, as is
        any line without a key; later duplicates of a key win (they are
        re-runs of the same cell).
        """
        self._entries.clear()
        self._labels.clear()
        if not self.path.exists():
            return 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key")
                if not isinstance(key, str) or "payload" not in record:
                    continue
                self._entries[key] = record["payload"]
                self._labels[key] = record.get("label", "")
        obs.event(
            "checkpoint-load",
            src="exec",
            path=str(self.path),
            entries=len(self._entries),
        )
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str, default: Any = None) -> Any:
        """The journaled payload for ``key``, or ``default``."""
        return self._entries.get(key, default)

    def labels(self) -> Iterator[str]:
        """Labels of every journaled cell (for progress reporting)."""
        return iter(self._labels.values())

    # -- writing --------------------------------------------------------

    def record(self, key: str, payload: Any, label: str = "") -> None:
        """Append one completed cell; durable once the call returns."""
        line = json.dumps(
            {"key": key, "label": label, "payload": payload},
            sort_keys=True,
            separators=(",", ":"),
        )
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self._entries[key] = payload
        self._labels[key] = label
        obs.event(
            "checkpoint-write", src="exec", key=key[:12], label=label
        )

    def close(self) -> None:
        """Close the underlying file handle (appends reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_journal(
    checkpoint: Optional[Union[str, Path, CheckpointJournal]],
    resume: bool,
) -> Optional[CheckpointJournal]:
    """Normalize a ``checkpoint=`` argument to a loaded journal.

    ``None`` stays ``None``; paths become journals.  With
    ``resume=True`` the journal's existing cells are loaded (so callers
    skip them); without it a pre-existing journal is an error — refusing
    to silently mix two different runs' cells in one file.
    """
    if checkpoint is None:
        if resume:
            raise ValueError("resume=True requires a checkpoint journal path")
        return None
    journal = (
        checkpoint
        if isinstance(checkpoint, CheckpointJournal)
        else CheckpointJournal(checkpoint)
    )
    if resume:
        journal.load()
    elif journal.path.exists() and journal.path.stat().st_size > 0:
        raise ValueError(
            f"checkpoint journal {journal.path} already exists; "
            f"pass resume=True to continue it or remove it to start over"
        )
    return journal
