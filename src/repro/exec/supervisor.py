"""Supervised execution: a fault-tolerant layer around the fork pool.

The bare :class:`~repro.exec.pool.WorkerPool` assumes its workers are
well-behaved: a worker that crashes, hangs or gets OOM-killed stalls the
whole map, and a single raising cell aborts the grid.  This module adds
the supervision layer the ROADMAP's "survive the fault model we
simulate" goal demands:

* **per-item wall-clock timeouts** — a cell that exceeds its budget gets
  its worker SIGKILLed and the item reassigned to a fresh worker;
* **worker-death detection** — the parent selects on each worker's
  result pipe, so an ``os._exit``/OOM-kill surfaces as EOF (and a
  ``waitpid`` reap) instead of a hang;
* **bounded retries with exponential backoff** — every failed attempt is
  retried up to ``retries`` times; the backoff delay is jittered
  deterministically via :func:`~repro.exec.seeding.derive_seed`, and the
  per-attempt seed handed to fault hooks is derived the same way, so a
  supervised run is reproducible end to end;
* **poison-item quarantine** — an item that exhausts its retries is
  recorded as a structured :class:`ItemFailure` in that result slot (and
  in the execution report) instead of aborting the map
  (``failure_mode="quarantine"``), or raises an
  :class:`~repro.errors.ExecutionError` carrying the remote traceback
  (``failure_mode="raise"``);
* **graceful degradation** — where ``fork`` is unavailable, inside a
  worker, or once workers keep dying past the death budget, the
  remaining items run serially in the parent with the same
  retry/quarantine semantics (timeouts cannot be enforced in-process and
  are inert in serial mode).

Determinism is preserved through all of it: supervised items are pure
functions of their content, so a retried attempt reproduces the same
value and the result list stays byte-identical to a fault-free serial
run — the property the crash-injection self-test
(``tests/test_supervisor.py``) pins down.

Access it through ``WorkerPool(workers=..., supervisor=SupervisorConfig(...))``;
campaigns, sweeps and the CLI thread the knobs through as ``timeout=`` /
``retries=``.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import repro.obs as obs
from repro.errors import ExecutionError
from repro.exec.seeding import derive_seed

# Published just before forking; inherited by children through the
# forked address space (same trick as repro.exec.pool).
_SUP_FN: Optional[Callable[[Any], Any]] = None
_SUP_ITEMS: Sequence[Any] = ()
_SUP_HOOK: Optional[Callable[["FaultContext"], None]] = None

_HEADER = struct.Struct("!I")


# ----------------------------------------------------------------------
# Public records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ItemFailure:
    """A quarantined work item: what failed, how often, and why.

    Attributes
    ----------
    index:
        Position of the item in the mapped sequence (its result slot).
    label:
        The cell label the caller supplied for this item.
    attempts:
        Total attempts made (first try + retries).
    error:
        Failure class: an exception type name, ``"timeout"`` or
        ``"worker-died"`` (for the *last* attempt).
    message:
        Human-readable detail of the last attempt's failure.
    remote_traceback:
        The worker-side traceback of the last raising attempt (empty for
        timeouts and worker deaths, which leave no Python traceback).
    """

    index: int
    label: str
    attempts: int
    error: str
    message: str
    remote_traceback: str = ""

    def summary(self) -> str:
        """One-line description for reports and table footers."""
        return (
            f"{self.label}: {self.error} after {self.attempts} attempt(s)"
            f" — {self.message}"
        )


@dataclass(frozen=True)
class FaultContext:
    """What a fault hook learns about the attempt it may sabotage.

    ``seed`` is the deterministic per-attempt seed
    (``derive_seed(config.seed, "attempt", index, attempt)``), so hooks —
    like :class:`CrashInjector` — make the same choice for the same
    attempt in every run.  ``in_worker`` is False when the item runs
    serially in the supervising process, where hooks must not kill or
    block the parent.
    """

    index: int
    attempt: int
    seed: int
    in_worker: bool


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision policy for one :class:`SupervisedExecutor` run.

    Attributes
    ----------
    timeout:
        Per-item wall-clock budget in seconds; the worker running an
        overdue item is SIGKILLed and the item retried.  ``None``
        disables timeouts.  Not enforceable in serial (degraded) mode.
    retries:
        Retry attempts per item after its first failure; once exhausted
        the item is quarantined (or raises, per ``failure_mode``).
    backoff_base / backoff_cap:
        Exponential backoff: attempt ``a`` waits
        ``min(cap, base * 2**(a-1))`` seconds, jittered ×[0.5, 1.5) by a
        seed-derived factor.
    seed:
        Base seed for attempt seeds and backoff jitter.
    failure_mode:
        ``"quarantine"`` records an :class:`ItemFailure` in the result
        slot and keeps mapping; ``"raise"`` aborts the map with an
        :class:`~repro.errors.ExecutionError` on the first exhausted item.
    max_worker_deaths:
        Death budget (kills + crashes) before the executor stops forking
        and degrades to serial; defaults to ``4*workers + 2*len(items)``.
    fault_hook:
        Test-only chaos hook called in the worker before each attempt
        (see :class:`CrashInjector`); inherited through fork, never
        pickled.
    on_result:
        Called in the parent as ``on_result(index, value)`` the moment an
        item completes successfully — completion order, not item order.
        This is the checkpointing hook: journal appends ride it.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    seed: int = 0
    failure_mode: str = "quarantine"
    max_worker_deaths: Optional[int] = None
    fault_hook: Optional[Callable[[FaultContext], None]] = None
    on_result: Optional[Callable[[int, Any], None]] = None

    def __post_init__(self) -> None:
        if self.failure_mode not in ("quarantine", "raise"):
            raise ValueError(
                f"failure_mode must be 'quarantine' or 'raise', "
                f"got {self.failure_mode!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")


@dataclass
class SupervisionStats:
    """What one supervised map did beyond its results."""

    mode: str = "supervised-serial"
    workers_used: int = 1
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    degraded: bool = False
    failures: List[ItemFailure] = field(default_factory=list)
    timings: List[float] = field(default_factory=list)


# ----------------------------------------------------------------------
# Deterministic fault injection (the self-test's chaos monkey)
# ----------------------------------------------------------------------


class InjectedFault(RuntimeError):
    """Raised by :class:`CrashInjector` for the "raise" fault flavour."""


class CrashInjector:
    """Deterministic chaos hook: kill, hang or fail workers mid-item.

    For each attempt a pseudo-random draw — a pure function of
    ``(seed, index, attempt)`` via :func:`derive_seed`, so every run
    injects the identical fault schedule — decides whether to inject and
    which action to take: ``"exit"`` (``os._exit``, simulating a crash /
    OOM kill), ``"hang"`` (sleep past any timeout), or ``"raise"``
    (raise :class:`InjectedFault`).  Retried attempts draw afresh, so an
    item sabotaged on attempt 0 usually succeeds on a later attempt.

    Outside a worker process (serial/degraded mode) the destructive
    actions are downgraded to ``"raise"`` so the supervising process is
    never killed or blocked.
    """

    def __init__(
        self,
        rate: float = 0.2,
        seed: int = 0,
        actions: Sequence[str] = ("exit", "hang", "raise"),
        hang_seconds: float = 30.0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = set(actions) - {"exit", "hang", "raise"}
        if unknown:
            raise ValueError(f"unknown injection action(s): {sorted(unknown)}")
        self.rate = rate
        self.seed = seed
        self.actions = tuple(actions)
        self.hang_seconds = hang_seconds
        self.parent_pid = os.getpid()

    def would_inject(self, index: int, attempt: int) -> Optional[str]:
        """The action this hook takes for (index, attempt), or ``None``."""
        draw = derive_seed(self.seed, "inject", index, attempt)
        if (draw % 1_000_000) / 1_000_000 >= self.rate:
            return None
        return self.actions[(draw >> 24) % len(self.actions)]

    def __call__(self, context: FaultContext) -> None:
        action = self.would_inject(context.index, context.attempt)
        if action is None:
            return
        in_child = context.in_worker and os.getpid() != self.parent_pid
        if action == "exit" and in_child:
            os._exit(17)
        if action == "hang" and in_child:
            time.sleep(self.hang_seconds)
        raise InjectedFault(
            f"injected {action!r} fault at item {context.index}, "
            f"attempt {context.attempt}"
        )


# ----------------------------------------------------------------------
# Pipe framing: length-prefixed pickles over raw fds
# ----------------------------------------------------------------------


def _read_exact(fd: int, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or ``None`` on EOF (worker death)."""
    chunks = b""
    while len(chunks) < count:
        try:
            chunk = os.read(fd, count - len(chunks))
        except OSError:
            return None
        if not chunk:
            return None
        chunks += chunk
    return chunks


def _read_msg(fd: int) -> Optional[Tuple[Any, ...]]:
    header = _read_exact(fd, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    body = _read_exact(fd, length)
    if body is None:
        return None
    return pickle.loads(body)


def _write_msg(fd: int, message: Tuple[Any, ...]) -> None:
    payload = pickle.dumps(message)
    view = memoryview(_HEADER.pack(len(payload)) + payload)
    while view:
        written = os.write(fd, view)
        view = view[written:]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _child_loop(task_r: int, result_w: int) -> None:
    """Run items one at a time until told to stop (or the parent dies)."""
    while True:
        message = _read_msg(task_r)
        if message is None or message[0] == "stop":
            os._exit(0)
        _, index, attempt, attempt_seed = message
        token = obs.capture_start()
        started = time.perf_counter()
        try:
            if _SUP_HOOK is not None:
                _SUP_HOOK(
                    FaultContext(
                        index=index,
                        attempt=attempt,
                        seed=attempt_seed,
                        in_worker=True,
                    )
                )
            value = _SUP_FN(_SUP_ITEMS[index])
            seconds = time.perf_counter() - started
            reply = ("ok", index, attempt, value, seconds, obs.capture_finish(token))
        except (KeyboardInterrupt, SystemExit):
            # die visibly instead of reporting the interrupt as an item
            # failure: the parent sees EOF on the result pipe, records a
            # worker death and reassigns the attempt (EXC001)
            os._exit(1)
        except BaseException as exc:  # must report, not die
            obs.capture_finish(token)  # roll back; failed attempts ship nothing
            reply = (
                "err",
                index,
                attempt,
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
            )
        try:
            _write_msg(result_w, reply)
        except (KeyboardInterrupt, SystemExit):
            os._exit(1)  # interrupted mid-write: never retry the write
        except Exception:
            if reply[0] != "ok":
                os._exit(1)
            # the value itself would not pickle — report that as an error
            try:
                _write_msg(
                    result_w,
                    (
                        "err",
                        index,
                        attempt,
                        "UnpicklableResult",
                        f"result of item {index} could not be pickled",
                        traceback.format_exc(),
                    ),
                )
            except (KeyboardInterrupt, SystemExit):
                os._exit(1)
            except Exception:
                os._exit(1)


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Attempt:
    __slots__ = ("index", "attempt", "ready_at")

    def __init__(self, index: int, attempt: int, ready_at: float) -> None:
        self.index = index
        self.attempt = attempt
        self.ready_at = ready_at


class _Worker:
    __slots__ = ("pid", "task_w", "result_r", "task", "deadline")

    def __init__(self, pid: int, task_w: int, result_r: int) -> None:
        self.pid = pid
        self.task_w = task_w
        self.result_r = result_r
        self.task: Optional[_Attempt] = None
        self.deadline: Optional[float] = None


_UNSET = object()


class SupervisedExecutor:
    """One supervised map: fork, watch, retry, quarantine (see module doc)."""

    def __init__(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Sequence[str],
        config: SupervisorConfig,
        workers: int,
    ) -> None:
        self.fn = fn
        self.items = list(items)
        self.labels = list(labels)
        self.config = config
        self.workers = max(1, workers)
        self.stats = SupervisionStats()
        self._results: List[Any] = [_UNSET] * len(self.items)
        self._timings: List[float] = [0.0] * len(self.items)
        # Captured telemetry payload of each item's *successful* attempt;
        # adopted in index order after the map (deterministic merge).
        self._telemetry: List[Optional[Dict[str, Any]]] = [None] * len(
            self.items
        )
        self._completed = 0
        self._pending: "deque[_Attempt]" = deque(
            _Attempt(i, 0, 0.0) for i in range(len(self.items))
        )
        self._workers: Dict[int, _Worker] = {}  # keyed by result_r fd
        budget = config.max_worker_deaths
        if budget is None:
            budget = 4 * self.workers + 2 * len(self.items)
        self._death_budget = budget

    # -- public ---------------------------------------------------------

    def run(self) -> Tuple[List[Any], SupervisionStats]:
        """Execute the map; return ``(results, stats)``.

        Quarantined slots hold their :class:`ItemFailure` (also listed in
        ``stats.failures``); every other slot holds the item's value.
        """
        from repro.exec import pool as _pool

        if not self.items:
            self.stats.mode = "supervised-serial"
            return [], self.stats
        use_fork = (
            self.workers > 1
            and _pool.fork_available()
            and not _pool._IN_WORKER
        )
        if use_fork:
            self.stats.mode = "supervised-fork"
            self.stats.workers_used = self.workers
            self._run_forked()
        else:
            self.stats.mode = "supervised-serial"
            self.stats.workers_used = 1
            self._run_serial()
        self.stats.timings = list(self._timings)
        # Merge per-item telemetry in submission order, never completion
        # order — the event stream stays identical across worker counts.
        for index, payload in enumerate(self._telemetry):
            obs.adopt(payload, label=self.labels[index])
        return self._results, self.stats

    # -- forked mode ----------------------------------------------------

    def _run_forked(self) -> None:
        global _SUP_FN, _SUP_ITEMS, _SUP_HOOK
        _SUP_FN, _SUP_ITEMS, _SUP_HOOK = (
            self.fn,
            self.items,
            self.config.fault_hook,
        )
        try:
            for _ in range(min(self.workers, len(self.items))):
                self._spawn()
            while self._completed < len(self.items) and not self.stats.degraded:
                now = time.monotonic()
                self._assign(now)
                self._wait(now)
                self._check_deadlines(time.monotonic())
            if self._completed < len(self.items):
                # degraded: recover in-flight attempts, continue serially
                for worker in list(self._workers.values()):
                    if worker.task is not None:
                        self._pending.appendleft(worker.task)
                        worker.task = None
                self._kill_all()
                self._run_serial()
        finally:
            self._kill_all()
            _SUP_FN, _SUP_ITEMS, _SUP_HOOK = None, (), None

    def _spawn(self) -> None:
        task_r, task_w = os.pipe()
        result_r, result_w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            try:
                os.close(task_w)
                os.close(result_r)
                # drop inherited parent-side fds of sibling workers so a
                # sibling's death is visible to the parent as EOF
                for sibling in self._workers.values():
                    for fd in (sibling.task_w, sibling.result_r):
                        try:
                            os.close(fd)
                        except OSError:
                            pass
                from repro.exec import pool as _pool

                _pool._mark_worker()
                _child_loop(task_r, result_w)
            finally:
                os._exit(1)
        os.close(task_r)
        os.close(result_w)
        self._workers[result_r] = _Worker(pid, task_w, result_r)
        obs.event("worker-spawn", src="exec", worker_pid=pid)

    def _assign(self, now: float) -> None:
        for worker in list(self._workers.values()):
            if worker.task is not None:
                continue
            task = self._next_ready(now)
            if task is None:
                return
            seed = derive_seed(self.config.seed, "attempt", task.index, task.attempt)
            try:
                _write_msg(worker.task_w, ("run", task.index, task.attempt, seed))
            except OSError:
                # the idle worker died between items: not the task's fault
                self._retire(worker)
                obs.event(
                    "worker-death",
                    src="exec",
                    worker_pid=worker.pid,
                    while_idle=True,
                )
                self._note_death()
                self._pending.appendleft(task)
                self._ensure_capacity()
                continue
            worker.task = task
            worker.deadline = (
                now + self.config.timeout if self.config.timeout else None
            )

    def _next_ready(self, now: float) -> Optional[_Attempt]:
        for _ in range(len(self._pending)):
            task = self._pending.popleft()
            if task.ready_at <= now:
                return task
            self._pending.append(task)
        return None

    def _wait(self, now: float) -> None:
        busy = [w.result_r for w in self._workers.values() if w.task is not None]
        timeout = self._wait_timeout(now)
        if not busy:
            # every worker idle: either backoff delays or death recovery
            if self._pending:
                self._ensure_capacity()
                if timeout:
                    time.sleep(min(timeout, 0.05))
            return
        try:
            readable, _, _ = select.select(busy, [], [], timeout)
        except InterruptedError:  # pragma: no cover - signal race
            return
        for fd in readable:
            self._on_readable(fd)

    def _wait_timeout(self, now: float) -> Optional[float]:
        horizon: Optional[float] = None
        for worker in self._workers.values():
            if worker.task is not None and worker.deadline is not None:
                horizon = (
                    worker.deadline
                    if horizon is None
                    else min(horizon, worker.deadline)
                )
        for task in self._pending:
            if task.ready_at > now:
                horizon = (
                    task.ready_at if horizon is None else min(horizon, task.ready_at)
                )
        if horizon is None:
            return None
        return max(0.0, horizon - now) + 0.001

    def _on_readable(self, fd: int) -> None:
        worker = self._workers.get(fd)
        if worker is None:  # already retired this round
            return
        message = _read_msg(fd)
        if message is None:
            # EOF: the worker died mid-item (crash, OOM kill, os._exit)
            task = worker.task
            self._retire(worker)
            obs.event(
                "worker-death",
                src="exec",
                worker_pid=worker.pid,
                index=None if task is None else task.index,
            )
            self._note_death()
            if task is not None:
                self._record_failure(
                    task,
                    "worker-died",
                    f"worker exited while running item {task.index}",
                    "",
                )
            self._ensure_capacity()
            return
        if message[0] == "ok":
            _, index, _, value, seconds, telemetry = message
            worker.task = None
            worker.deadline = None
            self._telemetry[index] = telemetry
            self._finish(index, value, seconds, succeeded=True)
        else:
            _, index, _, error, detail, remote_tb = message
            task = worker.task
            worker.task = None
            worker.deadline = None
            if task is None or task.index != index:  # pragma: no cover
                task = _Attempt(index, message[2], 0.0)
            self._record_failure(task, error, detail, remote_tb)

    def _check_deadlines(self, now: float) -> None:
        for worker in list(self._workers.values()):
            task = worker.task
            if task is None or worker.deadline is None or now < worker.deadline:
                continue
            self._kill_worker(worker)
            obs.event(
                "timeout-kill",
                src="exec",
                worker_pid=worker.pid,
                index=task.index,
                attempt=task.attempt,
                budget=self.config.timeout,
            )
            self.stats.timeouts += 1
            self._note_death()
            self._record_failure(
                task,
                "timeout",
                f"item {task.index} exceeded the {self.config.timeout}s "
                f"wall-clock budget (worker SIGKILLed)",
                "",
            )
            self._ensure_capacity()

    def _ensure_capacity(self) -> None:
        if self.stats.degraded:
            return
        remaining = len(self.items) - self._completed
        wanted = min(self.workers, max(1, remaining))
        while len(self._workers) < wanted:
            self._spawn()

    def _note_death(self) -> None:
        self.stats.worker_deaths += 1
        self._death_budget -= 1
        if self._death_budget < 0 and not self.stats.degraded:
            self.stats.degraded = True
            self.stats.mode = "supervised-degraded"
            obs.event(
                "degraded",
                src="exec",
                worker_deaths=self.stats.worker_deaths,
            )

    def _retire(self, worker: _Worker) -> None:
        """Forget a dead worker: close fds, reap the zombie."""
        self._workers.pop(worker.result_r, None)
        for fd in (worker.task_w, worker.result_r):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.waitpid(worker.pid, 0)
        except ChildProcessError:
            pass

    def _kill_worker(self, worker: _Worker) -> None:
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self._retire(worker)

    def _kill_all(self) -> None:
        """SIGKILL and reap every live worker (interrupt-safe cleanup)."""
        for worker in list(self._workers.values()):
            self._kill_worker(worker)

    # -- serial / degraded mode -----------------------------------------

    def _run_serial(self) -> None:
        while self._pending:
            task = self._pending.popleft()
            now = time.monotonic()
            if task.ready_at > now:
                time.sleep(task.ready_at - now)
            seed = derive_seed(self.config.seed, "attempt", task.index, task.attempt)
            token = obs.capture_start()
            started = time.perf_counter()
            try:
                if self.config.fault_hook is not None:
                    self.config.fault_hook(
                        FaultContext(
                            index=task.index,
                            attempt=task.attempt,
                            seed=seed,
                            in_worker=False,
                        )
                    )
                value = self.fn(self.items[task.index])
            except (KeyboardInterrupt, SystemExit):
                # ^C must abort the serial loop, never enter the retry
                # path (EXC001); the pool's cleanup reaps any children
                obs.capture_finish(token)
                raise
            except Exception as exc:
                obs.capture_finish(token)  # roll back the failed attempt
                self._record_failure(
                    task, type(exc).__name__, str(exc), traceback.format_exc()
                )
                continue
            seconds = time.perf_counter() - started
            self._telemetry[task.index] = obs.capture_finish(token)
            self._finish(task.index, value, seconds, succeeded=True)

    # -- shared bookkeeping ---------------------------------------------

    def _finish(
        self, index: int, value: Any, seconds: float, succeeded: bool
    ) -> None:
        if self._results[index] is not _UNSET:  # pragma: no cover - paranoia
            return
        self._results[index] = value
        self._timings[index] = seconds
        self._completed += 1
        if succeeded and self.config.on_result is not None:
            self.config.on_result(index, value)

    def _record_failure(
        self, task: _Attempt, error: str, detail: str, remote_tb: str
    ) -> None:
        attempts = task.attempt + 1
        if task.attempt < self.config.retries:
            self.stats.retries += 1
            obs.event(
                "retry",
                src="exec",
                index=task.index,
                label=self.labels[task.index],
                attempt=task.attempt,
                error=error,
            )
            delay = min(
                self.config.backoff_cap,
                self.config.backoff_base * (2 ** task.attempt),
            )
            jitter = 0.5 + (
                derive_seed(self.config.seed, "backoff", task.index, task.attempt)
                % 1000
            ) / 1000.0
            self._pending.append(
                _Attempt(
                    task.index, task.attempt + 1, time.monotonic() + delay * jitter
                )
            )
            return
        failure = ItemFailure(
            index=task.index,
            label=self.labels[task.index],
            attempts=attempts,
            error=error,
            message=detail,
            remote_traceback=remote_tb,
        )
        if self.config.failure_mode == "raise":
            raise ExecutionError(
                f"item {failure.label!r} failed after {attempts} attempt(s): "
                f"{error}: {detail}"
                + (f"\n--- remote traceback ---\n{remote_tb}" if remote_tb else ""),
                failure=failure,
            )
        obs.event(
            "quarantine",
            src="exec",
            index=task.index,
            label=self.labels[task.index],
            attempts=attempts,
            error=error,
        )
        self.stats.failures.append(failure)
        self._finish(task.index, failure, 0.0, succeeded=False)


def supervised_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    labels: Optional[Sequence[str]] = None,
    config: Optional[SupervisorConfig] = None,
    workers: Optional[int] = None,
) -> Tuple[List[Any], SupervisionStats]:
    """One-shot supervised map for callers without pool state.

    Returns ``(results, stats)``; prefer
    ``WorkerPool(supervisor=...).map`` when an
    :class:`~repro.exec.profiling.ExecutionReport` is wanted.
    """
    from repro.exec.pool import resolve_workers

    items = list(items)
    if labels is None:
        labels = [str(i) for i in range(len(items))]
    executor = SupervisedExecutor(
        fn,
        items,
        labels,
        config or SupervisorConfig(),
        workers=min(resolve_workers(workers), max(1, len(items))),
    )
    return executor.run()
