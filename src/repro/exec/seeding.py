"""Deterministic seed derivation for parallel execution.

When a sweep fans out across worker processes, every cell must draw its
randomness from a seed that depends only on the cell's *identity* — the
base seed plus the cell's coordinates in the grid — never on scheduling
order, worker id, or wall clock.  That is what makes a parallel run
byte-identical to the serial one: each cell computes the same derived
seed no matter which process runs it or when.

``derive_seed`` hashes the coordinates with SHA-256, which (unlike
Python's builtin ``hash``) is stable across processes, interpreter
restarts and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
from typing import Any, Tuple

# Derived seeds fit in 63 bits so they stay exact ints everywhere
# (including json round-trips and C-long-backed RNG implementations).
_SEED_BITS = 63


def seed_key(*parts: Any) -> Tuple[str, ...]:
    """Canonical string form of a seed-derivation key.

    Parts are rendered with ``repr`` so distinct values of distinct
    types cannot collide by string coincidence (``1`` vs ``"1"``).
    """
    return tuple(repr(part) for part in parts)


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Derive a per-cell seed from ``base_seed`` and the cell coordinates.

    The result is a pure function of the arguments — independent of
    process, platform and hash randomization — and distinct coordinates
    yield (with overwhelming probability) distinct seeds.

    Examples
    --------
    >>> derive_seed(0, "flood", 3) == derive_seed(0, "flood", 3)
    True
    >>> derive_seed(0, "flood", 3) != derive_seed(1, "flood", 3)
    True
    """
    digest = hashlib.sha256()
    digest.update(repr(int(base_seed)).encode("utf-8"))
    for part in seed_key(*parts):
        digest.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        digest.update(part.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> (64 - _SEED_BITS)
