"""A deterministic process-pool executor for embarrassingly parallel grids.

:class:`WorkerPool` maps a function over an ordered list of work items
and guarantees the result list is *identical* to the serial loop — same
values, same order — regardless of worker count.  Two properties make
that hold:

* **Determinism is the caller's half of the contract**: every item must
  carry its own seed (see :mod:`repro.exec.seeding`), so a cell's
  output is a pure function of the item, never of scheduling order.
* **Order is the pool's half**: results are collected positionally
  (``multiprocessing.Pool.map``), so the output list lines up with the
  input list even when cells finish out of order.

Implementation notes
--------------------
The pool uses the ``fork`` start method and ships only *item indices*
to workers.  The function and item list are published in module globals
immediately before forking, so children inherit them through the forked
address space.  This sidesteps pickling entirely for the *inputs* —
closures, lambdas and scenario recipes all work — while results still
cross a pipe and therefore must be picklable (every result type in this
codebase — ``CellResult``, ``RunSummary``, ``FloodResult``, plain
dicts — is).

Where ``fork`` is unavailable (Windows, some macOS configurations),
the machine has a single CPU core (forking there only adds IPC and
scheduling overhead), or the caller asks for 1 worker, the pool
degrades to an in-process serial loop with the same semantics, and the
attached :class:`~repro.exec.profiling.ExecutionReport` records which
mode ran.  Forked maps dispatch items in batches (four chunks per
worker) so short cells amortize the per-dispatch pipe round-trip.
Nested pools never fork twice: a map issued from inside a worker runs
serially in that worker.

Exceptions raised inside a forked worker are re-raised in the parent
with the worker-side traceback attached: the rebuilt exception carries a
``remote_traceback`` string attribute and a :class:`RemoteTraceback`
``__cause__``, so a failing campaign cell is debuggable instead of
pointing at ``pool.map``.

Passing ``supervisor=SupervisorConfig(...)`` swaps the bare pool for the
fault-tolerant executor of :mod:`repro.exec.supervisor`: per-item
timeouts, worker-death detection, bounded deterministic retries and
poison-item quarantine, with the same ordered-results contract.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Any, Callable, List, Optional, Sequence

import repro.obs as obs
from repro.exec.profiling import CellTiming, ExecutionReport, Stopwatch

# Published just before forking; inherited by children (see module docstring).
_TASK_FN: Optional[Callable[[Any], Any]] = None
_TASK_ITEMS: Sequence[Any] = ()
# True inside a forked worker: forbids nested forking.
_IN_WORKER = False


class RemoteTraceback(Exception):
    """Carrier for a worker-side traceback, attached as ``__cause__``."""

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return self.tb


def _rebuild_exc(exc: BaseException, tb: str) -> BaseException:
    """Reattach a worker-side traceback string to a rebuilt exception."""
    exc.remote_traceback = tb
    exc.__cause__ = RemoteTraceback(tb)
    return exc


class _RemoteError:
    """Pickled carrier for a worker-side exception and its traceback text.

    Exceptions lose their traceback when pickled across the result pipe
    (and ``multiprocessing`` would re-wrap a raised one with its own
    machinery), so workers *return* this carrier instead of raising; the
    parent rebuilds the original exception with the remote traceback
    attached via :func:`_rebuild_exc` and raises it there.
    """

    def __init__(self, exc: BaseException, tb: str) -> None:
        self.exc = exc
        self.tb = tb


def _invoke(index: int):
    """Run one cell by index; return ``(value, seconds, telemetry)``.

    Failures come back as a ``(_RemoteError, seconds, telemetry)``
    triple rather than propagating — see :class:`_RemoteError`.  The
    third slot is the captured telemetry payload for the cell (``None``
    when no collector is installed); forked workers inherit the parent's
    collector and ship their events back through this slot.
    """
    token = obs.capture_start()
    started = time.perf_counter()
    try:
        value = _TASK_FN(_TASK_ITEMS[index])
    except Exception as exc:
        value = _RemoteError(exc, traceback.format_exc())
    seconds = time.perf_counter() - started
    return value, seconds, obs.capture_finish(token)


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` argument to a concrete positive count.

    ``None`` and ``1`` mean serial; ``-1`` means "all cores"
    (``os.cpu_count()``).

    Raises
    ------
    ValueError
        For ``0`` and any negative count other than ``-1`` — such values
        used to be silently coerced, masking caller bugs.
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers == -1:
        return max(1, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError(
            f"workers must be a positive count or -1 (all cores), got {workers}"
        )
    return workers


class WorkerPool:
    """Deterministic fan-out executor (see module docstring).

    Parameters
    ----------
    workers:
        Worker process count.  ``None``/``1`` run serially in process;
        ``-1`` uses every core.
    cache:
        Optional :class:`~repro.exec.cache.KeyedCache` whose counters
        are snapshotted into each map's execution report.
    supervisor:
        Optional :class:`~repro.exec.supervisor.SupervisorConfig`.  When
        given, maps run under supervision — per-item timeouts, retries
        with deterministic backoff, worker-death recovery and
        poison-item quarantine — instead of the bare fork pool.

    Attributes
    ----------
    last_report:
        The :class:`ExecutionReport` of the most recent :meth:`map`.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Any = None,
        supervisor: Any = None,
    ) -> None:
        self.requested_workers = resolve_workers(workers)
        self.cache = cache
        self.supervisor = supervisor
        self.last_report = ExecutionReport()

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """``[fn(item) for item in items]``, possibly across processes.

        ``labels`` (same length as ``items``) name the cells in the
        execution report; indices are used when omitted.

        Under supervision (``supervisor=`` at construction), slots whose
        item exhausted its retries hold the structured
        :class:`~repro.exec.supervisor.ItemFailure` instead of a value;
        ``last_report.failures`` lists them.
        """
        items = list(items)
        if labels is None:
            labels = [str(i) for i in range(len(items))]
        if self.supervisor is not None:
            return self._map_supervised(fn, items, labels)
        workers = min(self.requested_workers, max(1, len(items)))
        # On a single-core box forking can only add overhead (the OS
        # timeslices the same CPU across children plus IPC costs), so
        # degrade to the in-process loop and say so in the report.
        multicore = (os.cpu_count() or 1) > 1
        use_pool = (
            workers > 1 and multicore and fork_available() and not _IN_WORKER
        )

        mark = _telemetry_mark()
        with obs.span("map", items=len(items)) as map_span:
            with Stopwatch() as watch:
                if use_pool:
                    mode = "fork-pool"
                    triples = self._map_forked(fn, items, workers)
                else:
                    mode, workers = "serial", 1
                    triples = [_timed_call(fn, item) for item in items]
            # Merge worker telemetry in submission order — deterministic
            # regardless of worker count or completion order.
            for label, (_, _, payload) in zip(labels, triples):
                obs.adopt(payload, label=label)
            map_span.set(mode=mode, workers=workers)

        self.last_report = ExecutionReport(
            mode=mode,
            workers=workers,
            requested_workers=self.requested_workers,
            wall_seconds=watch.seconds,
            timings=[
                CellTiming(label=label, seconds=seconds)
                for label, (_, seconds, _) in zip(labels, triples)
            ],
            cache=self.cache.stats() if self.cache is not None else None,
            span_tree=_telemetry_tree(mark),
        )
        return [value for value, _, _ in triples]

    # ------------------------------------------------------------------

    def _map_forked(
        self, fn: Callable[[Any], Any], items: Sequence[Any], workers: int
    ) -> List[Any]:
        global _TASK_FN, _TASK_ITEMS
        context = multiprocessing.get_context("fork")
        _TASK_FN, _TASK_ITEMS = fn, items
        pool = context.Pool(processes=workers, initializer=_mark_worker)
        try:
            # Batch several items per dispatch: with chunksize=1 every
            # cell pays one IPC round-trip, which for sub-millisecond
            # cells costs more than the cell itself and drives measured
            # speedup below 1.0.  Four chunks per worker keeps the tail
            # balanced while amortizing the pipe traffic; positional
            # ordering (and thus determinism) is unaffected.
            chunksize = max(1, len(items) // (workers * 4))
            triples = pool.map(_invoke, range(len(items)), chunksize=chunksize)
            for value, _, _ in triples:
                if isinstance(value, _RemoteError):
                    raise _rebuild_exc(value.exc, value.tb)
            return triples
        finally:
            # terminate + join unconditionally: on KeyboardInterrupt (or
            # any error) mid-map this kills and *reaps* every child, so
            # an interrupted sweep leaves no zombies behind.
            pool.terminate()
            pool.join()
            _TASK_FN, _TASK_ITEMS = None, ()

    # ------------------------------------------------------------------

    def _map_supervised(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Sequence[str],
    ) -> List[Any]:
        from repro.exec.supervisor import SupervisedExecutor

        workers = min(self.requested_workers, max(1, len(items)))
        executor = SupervisedExecutor(
            fn, items, labels, config=self.supervisor, workers=workers
        )
        mark = _telemetry_mark()
        with obs.span("map", items=len(items)) as map_span:
            with Stopwatch() as watch:
                results, stats = executor.run()
            map_span.set(mode=stats.mode, workers=stats.workers_used)
        self.last_report = ExecutionReport(
            mode=stats.mode,
            workers=stats.workers_used,
            requested_workers=self.requested_workers,
            wall_seconds=watch.seconds,
            timings=[
                CellTiming(label=label, seconds=seconds)
                for label, seconds in zip(labels, stats.timings)
            ],
            cache=self.cache.stats() if self.cache is not None else None,
            failures=list(stats.failures),
            retries=stats.retries,
            timeouts=stats.timeouts,
            worker_deaths=stats.worker_deaths,
            span_tree=_telemetry_tree(mark),
        )
        return results


def _timed_call(fn: Callable[[Any], Any], item: Any):
    token = obs.capture_start()
    started = time.perf_counter()
    value = fn(item)
    seconds = time.perf_counter() - started
    return value, seconds, obs.capture_finish(token)


def _telemetry_mark() -> int:
    """Event-list position before a map (for scoping its span tree)."""
    collector = obs.active()
    return len(collector.events) if collector is not None else 0


def _telemetry_tree(mark: int):
    """The span tree of events recorded since ``mark``, or ``None``."""
    collector = obs.active()
    if collector is None:
        return None
    from repro.obs.export import build_span_tree

    return build_span_tree(collector.events[mark:])


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[Any]:
    """One-shot :meth:`WorkerPool.map` for callers without pool state."""
    return WorkerPool(workers=workers).map(fn, items, labels=labels)
