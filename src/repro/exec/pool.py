"""A deterministic process-pool executor for embarrassingly parallel grids.

:class:`WorkerPool` maps a function over an ordered list of work items
and guarantees the result list is *identical* to the serial loop — same
values, same order — regardless of worker count.  Two properties make
that hold:

* **Determinism is the caller's half of the contract**: every item must
  carry its own seed (see :mod:`repro.exec.seeding`), so a cell's
  output is a pure function of the item, never of scheduling order.
* **Order is the pool's half**: results are collected positionally
  (``multiprocessing.Pool.map``), so the output list lines up with the
  input list even when cells finish out of order.

Implementation notes
--------------------
The pool uses the ``fork`` start method and ships only *item indices*
to workers.  The function and item list are published in module globals
immediately before forking, so children inherit them through the forked
address space.  This sidesteps pickling entirely for the *inputs* —
closures, lambdas and scenario recipes all work — while results still
cross a pipe and therefore must be picklable (every result type in this
codebase — ``CellResult``, ``RunSummary``, ``FloodResult``, plain
dicts — is).

Where ``fork`` is unavailable (Windows, some macOS configurations) or
the caller asks for ≤ 1 worker, the pool degrades to an in-process
serial loop with the same semantics, and the attached
:class:`~repro.exec.profiling.ExecutionReport` records which mode ran.
Nested pools never fork twice: a map issued from inside a worker runs
serially in that worker.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.exec.profiling import CellTiming, ExecutionReport, Stopwatch

# Published just before forking; inherited by children (see module docstring).
_TASK_FN: Optional[Callable[[Any], Any]] = None
_TASK_ITEMS: Sequence[Any] = ()
# True inside a forked worker: forbids nested forking.
_IN_WORKER = False


def _invoke(index: int):
    """Run one cell by index; return ``(value, wall_seconds)``."""
    started = time.perf_counter()
    value = _TASK_FN(_TASK_ITEMS[index])
    return value, time.perf_counter() - started


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers=`` argument to a concrete positive count.

    ``None``, ``0`` and ``1`` mean serial; negative values mean "all
    cores" (``os.cpu_count()``).
    """
    if workers is None:
        return 1
    workers = int(workers)
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return max(1, workers)


class WorkerPool:
    """Deterministic fan-out executor (see module docstring).

    Parameters
    ----------
    workers:
        Worker process count.  ``None``/``0``/``1`` run serially in
        process; ``-1`` uses every core.
    cache:
        Optional :class:`~repro.exec.cache.KeyedCache` whose counters
        are snapshotted into each map's execution report.

    Attributes
    ----------
    last_report:
        The :class:`ExecutionReport` of the most recent :meth:`map`.
    """

    def __init__(self, workers: Optional[int] = None, cache: Any = None) -> None:
        self.requested_workers = resolve_workers(workers)
        self.cache = cache
        self.last_report = ExecutionReport()

    # ------------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> List[Any]:
        """``[fn(item) for item in items]``, possibly across processes.

        ``labels`` (same length as ``items``) name the cells in the
        execution report; indices are used when omitted.
        """
        items = list(items)
        if labels is None:
            labels = [str(i) for i in range(len(items))]
        workers = min(self.requested_workers, max(1, len(items)))
        use_pool = workers > 1 and fork_available() and not _IN_WORKER

        with Stopwatch() as watch:
            if use_pool:
                mode, pairs = "fork-pool", self._map_forked(fn, items, workers)
            else:
                mode, workers = "serial", 1
                pairs = [_timed_call(fn, item) for item in items]

        self.last_report = ExecutionReport(
            mode=mode,
            workers=workers,
            requested_workers=self.requested_workers,
            wall_seconds=watch.seconds,
            timings=[
                CellTiming(label=label, seconds=seconds)
                for label, (_, seconds) in zip(labels, pairs)
            ],
            cache=self.cache.stats() if self.cache is not None else None,
        )
        return [value for value, _ in pairs]

    # ------------------------------------------------------------------

    def _map_forked(
        self, fn: Callable[[Any], Any], items: Sequence[Any], workers: int
    ) -> List[Any]:
        global _TASK_FN, _TASK_ITEMS
        context = multiprocessing.get_context("fork")
        _TASK_FN, _TASK_ITEMS = fn, items
        try:
            with context.Pool(processes=workers, initializer=_mark_worker) as pool:
                return pool.map(_invoke, range(len(items)), chunksize=1)
        finally:
            _TASK_FN, _TASK_ITEMS = None, ()


def _timed_call(fn: Callable[[Any], Any], item: Any):
    started = time.perf_counter()
    value = fn(item)
    return value, time.perf_counter() - started


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> List[Any]:
    """One-shot :meth:`WorkerPool.map` for callers without pool state."""
    return WorkerPool(workers=workers).map(fn, items, labels=labels)
