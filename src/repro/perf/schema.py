"""Shared benchmark-result schema: the envelope every bench emits.

Every ``benchmarks/bench_*.py`` that writes a ``BENCH_*.json`` does so
through :func:`emit_bench`, which wraps the experiment's own payload in
a versioned envelope::

    {
      "perf_schema": 1,
      "experiment": "f16_soak",
      "timestamp": 1754640000.0,          # unix seconds (provenance)
      "host": {"id": "...", "platform": ..., "python": ..., ...},
      "metrics": {
        "soak_wall_seconds": {
          "unit": "s", "direction": "lower", "value": 0.84,
          "repeats": 5, "samples": [...],
          "mean": ..., "min": ..., "max": ..., "stdev": ..., "rel_stdev": ...
        }
      },
      "payload": { ... experiment-specific results ... }
    }

``value`` is the min of the samples for ``direction="lower"`` metrics
(the standard noise-robust statistic for wall times) and the max for
``direction="higher"``.  The dispersion fields feed the ledger's
noise-aware tolerance bands (:mod:`repro.perf.ledger`).

This module stamps results with the wall clock and a host fingerprint
— provenance metadata about a measurement, never an input to any
simulated result — which is why it sits on the DET002 allowlist in
:mod:`repro.lint.engine`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ReproError

#: Version of the result envelope; bump on incompatible shape changes.
PERF_SCHEMA_VERSION = 1

#: Metric directions: which way is better.
DIRECTIONS = ("lower", "higher")


def host_fingerprint() -> Dict[str, Any]:
    """Identify the measuring host (stable across runs on one machine).

    ``id`` is a short hash of the descriptive fields: two results
    gate each other's absolute wall times only when their ids match
    (cross-host wall comparisons are informational — see the ledger).
    """
    info: Dict[str, Any] = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode("utf-8")
    ).hexdigest()
    info["id"] = digest[:12]
    return info


def dispersion(samples: Sequence[float]) -> Dict[str, float]:
    """Mean/min/max/stdev/rel_stdev of a sample list (n ≥ 1)."""
    if not samples:
        raise ReproError("a metric needs at least one sample")
    values = [float(v) for v in samples]
    mean = sum(values) / len(values)
    if len(values) > 1:
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        stdev = math.sqrt(variance)
    else:
        stdev = 0.0
    return {
        "mean": mean,
        "min": min(values),
        "max": max(values),
        "stdev": stdev,
        "rel_stdev": stdev / mean if mean else 0.0,
    }


def metric_summary(
    samples: Sequence[float],
    unit: str = "s",
    direction: str = "lower",
) -> Dict[str, Any]:
    """One metric entry: samples + dispersion + the gated ``value``."""
    if direction not in DIRECTIONS:
        raise ReproError(
            f"direction must be one of {DIRECTIONS}, got {direction!r}"
        )
    stats = dispersion(samples)
    value = stats["min"] if direction == "lower" else stats["max"]
    entry: Dict[str, Any] = {
        "unit": unit,
        "direction": direction,
        "value": value,
        "repeats": len(samples),
        "samples": [float(v) for v in samples],
    }
    entry.update(stats)
    return entry


MetricsInput = Mapping[str, Union[Sequence[float], Dict[str, Any]]]


def bench_envelope(
    experiment: str,
    metrics: MetricsInput,
    payload: Optional[Dict[str, Any]] = None,
    units: Optional[Mapping[str, str]] = None,
    directions: Optional[Mapping[str, str]] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Build the shared result envelope (see module docstring).

    ``metrics`` maps metric names to sample sequences (summarised via
    :func:`metric_summary`) or to pre-built summary dicts.  ``units``
    and ``directions`` override the per-metric defaults (``"s"``,
    ``"lower"``).
    """
    if not experiment:
        raise ReproError("experiment name must be non-empty")
    if not metrics:
        raise ReproError(f"experiment {experiment!r} emitted no metrics")
    summarised: Dict[str, Dict[str, Any]] = {}
    for name, value in metrics.items():
        if isinstance(value, dict):
            summarised[name] = dict(value)
        else:
            summarised[name] = metric_summary(
                value,
                unit=(units or {}).get(name, "s"),
                direction=(directions or {}).get(name, "lower"),
            )
    return {
        "perf_schema": PERF_SCHEMA_VERSION,
        "experiment": experiment,
        "timestamp": time.time() if timestamp is None else timestamp,
        "host": host_fingerprint(),
        "metrics": summarised,
        "payload": payload or {},
    }


def emit_bench(
    path: Union[str, "os.PathLike[str]"],
    experiment: str,
    metrics: MetricsInput,
    payload: Optional[Dict[str, Any]] = None,
    units: Optional[Mapping[str, str]] = None,
    directions: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Write one BENCH_*.json result file; return the envelope."""
    envelope = bench_envelope(
        experiment, metrics, payload=payload, units=units, directions=directions
    )
    problems = validate_bench(envelope)
    if problems:  # pragma: no cover - guards future schema drift
        raise ReproError(
            f"refusing to emit invalid result for {experiment!r}: "
            + "; ".join(problems)
        )
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return envelope


def validate_bench(doc: Any) -> List[str]:
    """Problems with one result envelope (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["result is not a JSON object"]
    if doc.get("perf_schema") != PERF_SCHEMA_VERSION:
        problems.append(
            f"perf_schema is {doc.get('perf_schema')!r}, "
            f"expected {PERF_SCHEMA_VERSION}"
        )
    if not isinstance(doc.get("experiment"), str) or not doc.get("experiment"):
        problems.append("missing experiment name")
    if not isinstance(doc.get("timestamp"), (int, float)):
        problems.append("missing numeric timestamp")
    host = doc.get("host")
    if not isinstance(host, dict) or not isinstance(host.get("id"), str):
        problems.append("missing host fingerprint (host.id)")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("missing metrics")
        return problems
    for name, entry in metrics.items():
        where = f"metric {name!r}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        if entry.get("direction") not in DIRECTIONS:
            problems.append(f"{where}: bad direction {entry.get('direction')!r}")
        if not isinstance(entry.get("unit"), str):
            problems.append(f"{where}: missing unit")
        if not isinstance(entry.get("value"), (int, float)):
            problems.append(f"{where}: missing numeric value")
        samples = entry.get("samples")
        if not isinstance(samples, list) or not samples:
            problems.append(f"{where}: missing samples")
        elif entry.get("repeats") != len(samples):
            problems.append(f"{where}: repeats != len(samples)")
        for field in ("mean", "min", "max", "stdev", "rel_stdev"):
            if not isinstance(entry.get(field), (int, float)):
                problems.append(f"{where}: missing dispersion field {field!r}")
    return problems


def load_bench(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Read and validate one BENCH_*.json file."""
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    problems = validate_bench(doc)
    if problems:
        raise ReproError(
            f"invalid benchmark result {path}: " + "; ".join(problems)
        )
    return doc
