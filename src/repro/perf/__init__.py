"""Benchmark provenance and regression gating for the repro suite.

Layout:
    schema.py   Shared BENCH_*.json result envelope: versioned schema,
                host fingerprint, repeats + dispersion per metric.
    ledger.py   The committed baseline ledger and the record/diff/check
                verbs behind ``repro perf`` — noise-aware tolerance
                bands, host-aware gating of wall-clock metrics.

The package exists so performance claims ("profiler overhead ≤ 5%",
"flood latency did not regress") are *checked*, not eyeballed: every
benchmark emits the same envelope, the ledger remembers the baseline,
and CI fails when a gated metric drifts beyond its measured noise.
"""

from repro.perf.ledger import (
    DEFAULT_ABS_FLOOR,
    DEFAULT_REL_FLOOR,
    DEFAULT_SIGMAS,
    LEDGER_SCHEMA_VERSION,
    MetricDelta,
    build_ledger,
    collect_results,
    diff_results,
    has_regression,
    load_ledger,
    render_deltas,
    write_ledger,
)
from repro.perf.schema import (
    DIRECTIONS,
    PERF_SCHEMA_VERSION,
    bench_envelope,
    dispersion,
    emit_bench,
    host_fingerprint,
    load_bench,
    metric_summary,
    validate_bench,
)

__all__ = [
    "DEFAULT_ABS_FLOOR",
    "DEFAULT_REL_FLOOR",
    "DEFAULT_SIGMAS",
    "DIRECTIONS",
    "LEDGER_SCHEMA_VERSION",
    "MetricDelta",
    "PERF_SCHEMA_VERSION",
    "bench_envelope",
    "build_ledger",
    "collect_results",
    "diff_results",
    "dispersion",
    "emit_bench",
    "has_regression",
    "host_fingerprint",
    "load_bench",
    "load_ledger",
    "metric_summary",
    "render_deltas",
    "validate_bench",
    "write_ledger",
]
