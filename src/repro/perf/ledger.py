"""The benchmark ledger: record / diff / check with tolerance bands.

The ledger (``benchmarks/perf-baseline.json``) is the committed record
of what every benchmark metric measured on the baseline host.  The
``repro perf`` CLI drives three verbs over it:

* **record** — collect every ``BENCH_*.json`` in a results directory
  and write their gated values (plus dispersion) as the new baseline;
* **diff** — compare fresh results against the ledger and render the
  per-metric table;
* **check** — same comparison, exit 1 when any metric regressed beyond
  its tolerance band (the CI ``perf-gate`` job).

Noise-aware tolerance
---------------------
A naive ``now > base`` gate flakes on every noisy run, so each
comparison gets a band sized to the *measured* dispersion of both
sides: ``sigmas × (spread_base + spread_now)``, floored so a quiet
benchmark still gets slack for scheduler jitter.

Wall-clock metrics (unit ``"s"``) compare **relatively** (ratio bands)
and are gated only when the result's host fingerprint matches the
ledger's — absolute seconds measured on different machines say nothing
about regressions, so cross-host wall comparisons are reported as
informational.  Unitless metrics (overhead fractions, amplification
ratios) compare **absolutely** and gate everywhere: a profiler
overhead fraction is machine-comparable by construction, which is what
lets the CI gate enforce the ≤5% overhead budget on its own hardware.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.perf.schema import (
    PERF_SCHEMA_VERSION,
    host_fingerprint,
    load_bench,
)

#: Version of the ledger file; bump on incompatible shape changes.
LEDGER_SCHEMA_VERSION = 1

#: Default relative tolerance floor for wall-clock (ratio) comparisons.
DEFAULT_REL_FLOOR = 0.35

#: Default absolute tolerance floor for unitless comparisons.
DEFAULT_ABS_FLOOR = 0.05

#: Default width multiplier on the combined measured dispersion.
DEFAULT_SIGMAS = 3.0

#: Comparison outcomes, roughly worst-first.
STATUSES = ("regression", "improved", "ok", "cross-host", "new", "missing")


def collect_results(
    results_dir: Union[str, "os.PathLike[str]"],
) -> Dict[str, Dict[str, Any]]:
    """Load every ``BENCH_*.json`` under ``results_dir`` by experiment."""
    directory = os.fspath(results_dir)
    if not os.path.isdir(directory):
        raise ReproError(f"results directory {directory!r} does not exist")
    results: Dict[str, Dict[str, Any]] = {}
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        doc = load_bench(os.path.join(directory, name))
        experiment = doc["experiment"]
        if experiment in results:
            raise ReproError(
                f"duplicate results for experiment {experiment!r} "
                f"in {directory}"
            )
        results[experiment] = doc
    if not results:
        raise ReproError(f"no BENCH_*.json results found in {directory!r}")
    return results


def build_ledger(results: Dict[str, Dict[str, Any]]) -> Dict[str, Any]:
    """The baseline ledger for a set of results (current host stamps it)."""
    entries: Dict[str, Dict[str, Any]] = {}
    for experiment in sorted(results):
        doc = results[experiment]
        entries[experiment] = {
            name: {
                "unit": entry["unit"],
                "direction": entry["direction"],
                "value": entry["value"],
                "stdev": entry["stdev"],
                "rel_stdev": entry["rel_stdev"],
            }
            for name, entry in sorted(doc["metrics"].items())
        }
    return {
        "ledger_schema": LEDGER_SCHEMA_VERSION,
        "perf_schema": PERF_SCHEMA_VERSION,
        "host": host_fingerprint(),
        "entries": entries,
    }


def write_ledger(
    path: Union[str, "os.PathLike[str]"], ledger: Dict[str, Any]
) -> None:
    """Write a ledger as deterministic JSON."""
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        json.dump(ledger, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_ledger(path: Union[str, "os.PathLike[str]"]) -> Dict[str, Any]:
    """Read a ledger, validating its version stamps."""
    try:
        with open(os.fspath(path), "r", encoding="utf-8") as handle:
            ledger = json.load(handle)
    except FileNotFoundError:
        raise ReproError(
            f"no baseline ledger at {os.fspath(path)!r} "
            "(create one with 'repro perf record')"
        )
    if ledger.get("ledger_schema") != LEDGER_SCHEMA_VERSION:
        raise ReproError(
            f"ledger schema {ledger.get('ledger_schema')!r} unsupported "
            f"(expected {LEDGER_SCHEMA_VERSION})"
        )
    if not isinstance(ledger.get("entries"), dict):
        raise ReproError("ledger has no entries")
    return ledger


@dataclass(frozen=True)
class MetricDelta:
    """One metric's comparison against the ledger."""

    experiment: str
    metric: str
    unit: str
    direction: str
    baseline: Optional[float]
    current: Optional[float]
    band: float
    status: str
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        """current / baseline where both sides exist and baseline ≠ 0."""
        if self.baseline and self.current is not None:
            return self.current / self.baseline
        return None


def _compare(
    experiment: str,
    metric: str,
    base: Dict[str, Any],
    now: Dict[str, Any],
    host_match: bool,
    rel_floor: float,
    abs_floor: float,
    sigmas: float,
) -> MetricDelta:
    direction = now.get("direction", base["direction"])
    unit = now.get("unit", base["unit"])
    base_v = float(base["value"])
    now_v = float(now["value"])
    relative = unit == "s"
    if relative:
        band = max(
            rel_floor,
            sigmas
            * (float(base.get("rel_stdev", 0)) + float(now.get("rel_stdev", 0))),
        )
        if not host_match:
            return MetricDelta(
                experiment, metric, unit, direction, base_v, now_v, band,
                "cross-host",
                "wall time measured on a different host; not gated",
            )
        if direction == "lower":
            worse = now_v > base_v * (1.0 + band)
            better = now_v < base_v * (1.0 - band)
        else:
            worse = now_v < base_v * (1.0 - band)
            better = now_v > base_v * (1.0 + band)
    else:
        band = max(
            abs_floor,
            sigmas
            * (float(base.get("stdev", 0)) + float(now.get("stdev", 0))),
        )
        if direction == "lower":
            worse = now_v > base_v + band
            better = now_v < base_v - band
        else:
            worse = now_v < base_v - band
            better = now_v > base_v + band
    status = "regression" if worse else ("improved" if better else "ok")
    return MetricDelta(
        experiment, metric, unit, direction, base_v, now_v, band, status
    )


def diff_results(
    results: Dict[str, Dict[str, Any]],
    ledger: Dict[str, Any],
    rel_floor: float = DEFAULT_REL_FLOOR,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    sigmas: float = DEFAULT_SIGMAS,
) -> List[MetricDelta]:
    """Compare results to the ledger, one delta per known metric."""
    deltas: List[MetricDelta] = []
    ledger_host = ledger.get("host", {}).get("id")
    entries = ledger["entries"]
    for experiment in sorted(set(entries) | set(results)):
        baseline_metrics = entries.get(experiment)
        doc = results.get(experiment)
        if doc is None:
            assert baseline_metrics is not None
            for metric in sorted(baseline_metrics):
                base = baseline_metrics[metric]
                deltas.append(
                    MetricDelta(
                        experiment, metric, base["unit"], base["direction"],
                        float(base["value"]), None, 0.0, "missing",
                        "no fresh result for this ledger entry",
                    )
                )
            continue
        host_match = doc.get("host", {}).get("id") == ledger_host
        now_metrics = doc["metrics"]
        if baseline_metrics is None:
            for metric in sorted(now_metrics):
                entry = now_metrics[metric]
                deltas.append(
                    MetricDelta(
                        experiment, metric, entry["unit"], entry["direction"],
                        None, float(entry["value"]), 0.0, "new",
                        "not in the ledger yet (record to adopt)",
                    )
                )
            continue
        for metric in sorted(set(baseline_metrics) | set(now_metrics)):
            base = baseline_metrics.get(metric)
            now = now_metrics.get(metric)
            if base is None:
                assert now is not None
                deltas.append(
                    MetricDelta(
                        experiment, metric, now["unit"], now["direction"],
                        None, float(now["value"]), 0.0, "new",
                        "not in the ledger yet (record to adopt)",
                    )
                )
            elif now is None:
                deltas.append(
                    MetricDelta(
                        experiment, metric, base["unit"], base["direction"],
                        float(base["value"]), None, 0.0, "missing",
                        "metric vanished from the fresh result",
                    )
                )
            else:
                deltas.append(
                    _compare(
                        experiment, metric, base, now, host_match,
                        rel_floor, abs_floor, sigmas,
                    )
                )
    return deltas


def render_deltas(deltas: List[MetricDelta]) -> str:
    """The comparison as an aligned text table plus a one-line verdict."""
    if not deltas:
        return "perf: nothing to compare"
    headers = ("experiment", "metric", "baseline", "current", "band", "status")
    rows: List[List[str]] = []
    order = {status: rank for rank, status in enumerate(STATUSES)}
    for delta in sorted(
        deltas, key=lambda d: (order.get(d.status, 99), d.experiment, d.metric)
    ):
        rows.append(
            [
                delta.experiment,
                delta.metric,
                "-" if delta.baseline is None else f"{delta.baseline:.6g}",
                "-" if delta.current is None else f"{delta.current:.6g}",
                f"±{delta.band:.3g}" + ("×" if delta.unit == "s" else ""),
                delta.status + (f" ({delta.note})" if delta.note else ""),
            ]
        )
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    counts: Dict[str, int] = {}
    for delta in deltas:
        counts[delta.status] = counts.get(delta.status, 0) + 1
    summary = ", ".join(
        f"{counts[status]} {status}" for status in STATUSES if status in counts
    )
    lines.append(f"{len(deltas)} metric(s): {summary}")
    return "\n".join(lines)


def has_regression(deltas: List[MetricDelta]) -> bool:
    """True when any metric regressed beyond its band."""
    return any(delta.status == "regression" for delta in deltas)
