"""Logarithmic Harary Graphs — a reproduction of Jenkins & Demers (ICDCS 2001).

LHGs are communication topologies for robust, efficient flooding: they
are k-node-connected, k-link-connected, link-minimal (Harary-optimal
edge counts) **and** have O(log n) diameter, so a flood survives any
k − 1 failures, costs the fewest possible messages, and completes in
logarithmically many hops.

Quickstart::

    from repro import build_lhg, check_lhg, run_flood

    graph, certificate = build_lhg(n=100, k=4)
    report = check_lhg(graph, k=4)
    assert report.is_lhg
    result = run_flood(graph, source=graph.nodes()[0])
    print(result.completion_time, result.messages)

Package map:

* :mod:`repro.graphs` — self-contained graph substrate (structure,
  connectivity, Harary baseline, generators);
* :mod:`repro.core` — the LHG constructions, property verifier,
  certificates and routing;
* :mod:`repro.flooding` — discrete-event flooding simulator with
  failure injection and baseline protocols;
* :mod:`repro.overlay` — dynamic-membership maintenance under churn;
* :mod:`repro.analysis` — sweeps, tables, shape statistics for the
  benchmark harness;
* :mod:`repro.robustness` — chaos campaigns: scenario × protocol
  resilience matrices with invariant checks;
* :mod:`repro.exec` — the execution engine: deterministic parallel
  fan-out (``workers=``) and memoized graph construction;
* :mod:`repro.lint` — static determinism & fork-safety analysis: the
  AST rule set behind ``repro lint`` that keeps the byte-identical
  reproducibility invariant checkable before anything runs.
"""

from repro.core.existence import build_lhg, exists, regular_exists
from repro.core.jenkins_demers import is_jd_constructible, jenkins_demers_graph
from repro.core.kdiamond import kdiamond_graph
from repro.core.ktree import ktree_graph
from repro.core.properties import LHGReport, check_lhg, is_lhg
from repro.errors import (
    ConstructionError,
    GraphError,
    InfeasiblePairError,
    ReproError,
    SimulationError,
)
from repro.exec import WorkerPool, build_lhg_cached
from repro.flooding.experiments import (
    ExperimentSpec,
    RunSummary,
    run_experiment,
    run_flood,
    run_gossip,
    run_treecast,
)
from repro.graphs.generators.harary import harary_graph
from repro.graphs.graph import Graph
from repro.lint import LintConfig, run_lint
from repro.robustness import (
    ChaosCampaign,
    ResilienceMatrix,
    TopologySpec,
    standard_protocols,
    standard_scenarios,
)

__version__ = "1.0.0"

__all__ = [
    "ChaosCampaign",
    "ConstructionError",
    "ExperimentSpec",
    "Graph",
    "GraphError",
    "InfeasiblePairError",
    "LHGReport",
    "LintConfig",
    "ReproError",
    "ResilienceMatrix",
    "RunSummary",
    "SimulationError",
    "TopologySpec",
    "WorkerPool",
    "__version__",
    "build_lhg",
    "build_lhg_cached",
    "check_lhg",
    "exists",
    "harary_graph",
    "is_jd_constructible",
    "is_lhg",
    "jenkins_demers_graph",
    "kdiamond_graph",
    "ktree_graph",
    "regular_exists",
    "run_experiment",
    "run_flood",
    "run_gossip",
    "run_lint",
    "run_treecast",
    "standard_protocols",
    "standard_scenarios",
]
