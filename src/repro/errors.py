"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Sub-hierarchies
mirror the package layout:

* :class:`GraphError` — the graph substrate (:mod:`repro.graphs`).
* :class:`ConstructionError` — LHG builders (:mod:`repro.core`).
* :class:`SimulationError` — the flooding simulator (:mod:`repro.flooding`).
* :class:`ExecutionError` — the execution engine (:mod:`repro.exec`).

Errors carry the offending parameters as attributes where that helps a
caller recover (for example :class:`InfeasiblePairError` exposes ``n`` and
``k`` so a caller can pick the nearest feasible pair).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph got a disconnected one."""


class GeneratorParameterError(GraphError, ValueError):
    """A graph generator was called with parameters outside its domain."""


class ConstructionError(ReproError):
    """Base class for errors raised by the LHG construction modules."""


class InfeasiblePairError(ConstructionError, ValueError):
    """No graph exists for the requested ``(n, k)`` under the given rule.

    Attributes
    ----------
    n, k:
        The infeasible pair.
    rule:
        Name of the construction rule that rejected the pair
        (``"jenkins-demers"``, ``"k-tree"``, ``"k-diamond"``).
    reason:
        Human-readable explanation of why the pair is infeasible.
    """

    def __init__(self, n: int, k: int, rule: str, reason: str) -> None:
        super().__init__(f"no {rule} graph exists for (n={n}, k={k}): {reason}")
        self.n = n
        self.k = k
        self.rule = rule
        self.reason = reason


class CertificateError(ConstructionError):
    """A construction certificate is inconsistent with its graph."""


class ExecutionError(ReproError):
    """The execution engine could not complete a map.

    Raised by the supervised executor when an item exhausts its retries
    under ``failure_mode="raise"``.  The structured
    :class:`~repro.exec.supervisor.ItemFailure` record is attached as
    :attr:`failure` (``None`` for engine-level failures without a
    single offending item).
    """

    def __init__(self, message: str, failure: object = None) -> None:
        super().__init__(message)
        self.failure = failure


class SimulationError(ReproError):
    """Base class for errors raised by the flooding simulator."""


class SchedulingError(SimulationError):
    """An event was scheduled into the past or after simulation shutdown."""


class ProtocolError(SimulationError):
    """A protocol implementation violated the simulator's contract."""
