"""Chaos scenarios: named, seeded adversary configurations.

A :class:`Scenario` is a *recipe*: given a topology, a source and a
seed it produces the concrete :class:`ScenarioSetup` (failure/recovery
schedule plus message-level fault model) for one campaign cell.  The
same (scenario, graph, source, seed) tuple always yields the same
setup, which is what makes a resilience matrix row reproducible.

The standard library covers the regimes the paper's guarantee should be
stressed against but the crash-stop model alone cannot express:

* ``baseline``        — no faults (sanity row);
* ``loss-p``          — i.i.d. per-message drop with probability p;
* ``dup-reorder``     — duplication + extra-delay reordering;
* ``flapping``        — victims' links cycle down/up, outliving a
  fixed retransmission window;
* ``partition-heal``  — the network splits in two, then heals;
* ``crash-recover``   — transient node crashes (crash-recovery model).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.flooding.failures import (
    FailureSchedule,
    bisect_groups,
    crash_and_recover,
    flapping_links,
    partition,
)
from repro.flooding.faults import FaultModel, LinkFaultProfile, RandomFaultModel
from repro.graphs.graph import Graph

NodeId = Hashable


@dataclass(frozen=True)
class ScenarioSetup:
    """The concrete adversary for one run: schedule + fault model."""

    schedule: FailureSchedule = field(default_factory=FailureSchedule)
    fault_model: Optional[FaultModel] = None


@dataclass(frozen=True)
class Scenario:
    """A named adversary recipe (see module docstring).

    ``build(graph, source, seed)`` must be deterministic in its
    arguments; all randomness must flow through ``seed``.
    """

    name: str
    build: Callable[[Graph, NodeId, int], ScenarioSetup]
    description: str = ""


def _pick_victims(
    graph: Graph, source: NodeId, count: int, seed: int
) -> List[NodeId]:
    eligible = sorted((v for v in graph.nodes() if v != source), key=repr)
    if count > len(eligible):
        raise SimulationError(
            f"cannot pick {count} victims among {len(eligible)} nodes"
        )
    return random.Random(seed).sample(eligible, count)


def baseline() -> Scenario:
    """No faults at all — every protocol must ace this row."""
    return Scenario(
        name="baseline",
        build=lambda graph, source, seed: ScenarioSetup(),
        description="fault-free sanity row",
    )


def message_loss(rate: float) -> Scenario:
    """Drop each message i.i.d. with probability ``rate``."""
    return Scenario(
        name=f"loss-{rate:g}",
        build=lambda graph, source, seed: ScenarioSetup(
            fault_model=RandomFaultModel(LinkFaultProfile(drop=rate), seed=seed)
        ),
        description=f"i.i.d. message loss p={rate:g}",
    )


def duplicate_reorder(
    duplicate: float = 0.3, reorder: float = 0.3, reorder_delay: float = 2.5
) -> Scenario:
    """Duplicate and extra-delay (reorder) messages, no loss."""
    return Scenario(
        name="dup-reorder",
        build=lambda graph, source, seed: ScenarioSetup(
            fault_model=RandomFaultModel(
                LinkFaultProfile(
                    duplicate=duplicate,
                    reorder=reorder,
                    reorder_delay=reorder_delay,
                ),
                seed=seed,
            )
        ),
        description=(
            f"duplication p={duplicate:g}, reorder p={reorder:g} "
            f"(+{reorder_delay:g} delay)"
        ),
    )


def flapping(
    victims: int = 3,
    down_for: float = 32.0,
    period: float = 50.0,
    start: float = 0.5,
    cycles: int = 2,
) -> Scenario:
    """Flap every link of ``victims`` seeded-random nodes.

    The down window deliberately outlives a fixed retransmission budget
    (e.g. ReliableFlood's 8 × 3.0 = 24 time units), so only schemes
    that keep retrying — exponential backoff with a deep budget — cover
    the victims once their links come back.
    """

    def build(graph: Graph, source: NodeId, seed: int) -> ScenarioSetup:
        chosen = _pick_victims(graph, source, victims, seed)
        links = [
            (node, neighbor)
            for node in chosen
            for neighbor in sorted(graph.neighbors(node), key=repr)
        ]
        return ScenarioSetup(
            schedule=flapping_links(
                links, period=period, down_for=down_for, start=start, cycles=cycles
            )
        )

    return Scenario(
        name="flapping",
        build=build,
        description=(
            f"{victims} victims' links flap: down {down_for:g} of every "
            f"{period:g} time units × {cycles} cycles"
        ),
    )


def partition_heal(at: float = 0.0, heal_at: float = 40.0) -> Scenario:
    """Split the network into two BFS halves at ``at``; heal at ``heal_at``."""

    def build(graph: Graph, source: NodeId, seed: int) -> ScenarioSetup:
        near, far = bisect_groups(graph, source)
        return ScenarioSetup(
            schedule=partition(graph, [near, far], at=at, heal_at=heal_at)
        )

    return Scenario(
        name="partition-heal",
        build=build,
        description=f"two-way partition at t={at:g}, healed at t={heal_at:g}",
    )


def crash_recover(
    victims: int = 5, crash_at: float = 0.5, recover_at: float = 35.0
) -> Scenario:
    """Crash ``victims`` seeded-random nodes transiently."""

    def build(graph: Graph, source: NodeId, seed: int) -> ScenarioSetup:
        chosen = _pick_victims(graph, source, victims, seed)
        return ScenarioSetup(
            schedule=crash_and_recover(
                chosen, crash_at=crash_at, recover_at=recover_at
            )
        )

    return Scenario(
        name="crash-recover",
        build=build,
        description=(
            f"{victims} nodes crash at t={crash_at:g}, recover at "
            f"t={recover_at:g}"
        ),
    )


def standard_scenarios(
    loss_rates: Sequence[float] = (0.1, 0.3),
) -> List[Scenario]:
    """The default campaign grid (the acceptance sweep)."""
    scenarios = [baseline()]
    scenarios.extend(message_loss(rate) for rate in loss_rates)
    scenarios.append(duplicate_reorder())
    scenarios.append(flapping())
    scenarios.append(partition_heal())
    scenarios.append(crash_recover())
    return scenarios
