"""Chaos engineering for the flooding stack: campaigns, scenarios, invariants.

The paper's claim is *resilience* — an LHG floods correctly under any
k − 1 crashes or link failures.  This package stresses that claim far
beyond the crash-stop model: a :class:`ChaosCampaign` sweeps scenario ×
protocol × topology grids (message loss, duplication, reordering,
flapping links, transient partitions, crash-recovery), checks harness
invariants after every run, and aggregates a resilience matrix.
Exposed on the command line as ``python -m repro chaos``.
"""

from repro.exec.cache import TopologySpec
from repro.robustness.attacks import AttackPlan, targeted_cut_attacks
from repro.robustness.campaign import (
    CellResult,
    ChaosCampaign,
    ProtocolSpec,
    ResilienceMatrix,
    round_flood_protocol,
    standard_protocols,
)
from repro.robustness.invariants import (
    InvariantViolation,
    RunRecord,
    check_invariants,
    check_no_dead_delivery,
    check_quiescence,
    check_retransmission_budget,
    check_survivor_coverage,
    check_topology_invariants,
    recertify_survivors,
)
from repro.robustness.scenarios import (
    Scenario,
    ScenarioSetup,
    baseline,
    crash_recover,
    duplicate_reorder,
    flapping,
    message_loss,
    partition_heal,
    standard_scenarios,
)

__all__ = [
    "AttackPlan",
    "CellResult",
    "ChaosCampaign",
    "InvariantViolation",
    "ProtocolSpec",
    "ResilienceMatrix",
    "RunRecord",
    "Scenario",
    "ScenarioSetup",
    "TopologySpec",
    "baseline",
    "check_invariants",
    "check_no_dead_delivery",
    "check_quiescence",
    "check_retransmission_budget",
    "check_survivor_coverage",
    "check_topology_invariants",
    "crash_recover",
    "duplicate_reorder",
    "flapping",
    "message_loss",
    "partition_heal",
    "recertify_survivors",
    "round_flood_protocol",
    "standard_protocols",
    "standard_scenarios",
    "targeted_cut_attacks",
]
