"""The chaos campaign engine: scenario × protocol × topology sweeps.

A :class:`ChaosCampaign` runs every cell of a grid — each cell is one
simulated dissemination under one adversary — collects a
:class:`CellResult` per run, checks the invariants of
:mod:`repro.robustness.invariants` after every run, and aggregates
everything into a :class:`ResilienceMatrix` that renders as the usual
ASCII table.  Campaigns are deterministic: a cell is a pure function of
(topology, protocol, scenario, seed), so any row of the matrix can be
reproduced in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Hashable, List, Optional, Sequence, Tuple, Union

import repro.obs as obs
from repro.analysis.tables import render_table
from repro.errors import SimulationError
from repro.exec.cache import GRAPH_CACHE, TopologySpec
from repro.exec.checkpoint import CheckpointJournal, checkpoint_key, open_journal
from repro.exec.pool import WorkerPool
from repro.exec.profiling import ExecutionReport
from repro.exec.supervisor import ItemFailure, SupervisorConfig
from repro.flooding.experiments import summarize_run
from repro.flooding.failures import FailureSchedule, apply_schedule, survivors
from repro.flooding.faults import FaultModel, RandomFaultModel
from repro.flooding.network import Network, Protocol
from repro.flooding.protocols.arq import ArqProtocol
from repro.flooding.protocols.reliable import ReliableFloodProtocol
from repro.flooding.rounds import round_flood
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector
from repro.graphs.faultview import FaultView
from repro.graphs.graph import Graph
from repro.robustness.invariants import (
    InvariantViolation,
    RunRecord,
    check_invariants,
    recertify_survivors,
)
from repro.robustness.scenarios import Scenario, standard_scenarios

NodeId = Hashable

_EVENT_BUDGET_FACTOR = 60


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol column of the campaign grid.

    Attributes
    ----------
    name:
        Column label.
    factory:
        ``(network, source) -> Protocol`` building a fresh instance.
        Required for the event engine; ignored by the rounds engine.
    guarantees_delivery:
        Whether the coverage invariant is *enforced* for this protocol
        (True for the ARQ-wrapped variant, which claims convergence).
    budget_multiplier:
        Scales the per-run event budget (retransmitting protocols need
        more room than one-shot flooding).
    engine:
        ``"event"`` runs the protocol through the event-driven
        :class:`~repro.flooding.simulator.Simulator`; ``"rounds"``
        runs the synchronous
        :func:`~repro.flooding.rounds.round_flood` engine directly on
        the topology's oracle — no materialization, so it is the only
        arm that scales to oracle-backed million-node specs.
    """

    name: str
    factory: Optional[Callable[[Network, NodeId], Protocol]] = None
    guarantees_delivery: bool = False
    budget_multiplier: int = 1
    engine: str = "event"


def round_flood_protocol(name: str = "round-flood") -> ProtocolSpec:
    """The synchronous round-flooding column of a campaign grid.

    Round flooding over an oracle delivers to every reachable survivor
    by construction (coverage is a theorem of the engine, not a retry
    policy), so the coverage invariant is enforced.
    """
    return ProtocolSpec(
        name=name, factory=None, guarantees_delivery=True, engine="rounds"
    )


def standard_protocols(
    retry_timeout: float = 3.0,
    inner_retries: int = 8,
    base_timeout: float = 2.5,
    backoff: float = 2.0,
    max_timeout: float = 16.0,
    arq_retries: int = 10,
) -> List[ProtocolSpec]:
    """The acceptance pair: plain ReliableFlood vs its ARQ-wrapped form."""

    def plain(network: Network, source: NodeId) -> Protocol:
        return ReliableFloodProtocol(
            network, source, retry_timeout=retry_timeout, max_retries=inner_retries
        )

    def arq_wrapped(network: Network, source: NodeId) -> Protocol:
        return ArqProtocol(
            network,
            ReliableFloodProtocol(
                network,
                source,
                retry_timeout=retry_timeout,
                max_retries=inner_retries,
            ),
            base_timeout=base_timeout,
            backoff=backoff,
            max_timeout=max_timeout,
            max_retries=arq_retries,
        )

    return [
        ProtocolSpec(
            name="reliable-flood",
            factory=plain,
            guarantees_delivery=False,
            budget_multiplier=inner_retries + 2,
        ),
        ProtocolSpec(
            name="arq-reliable-flood",
            factory=arq_wrapped,
            guarantees_delivery=True,
            budget_multiplier=inner_retries + arq_retries + 4,
        ),
    ]


def _monotone(schedule: FailureSchedule) -> bool:
    """True when the schedule only ever removes capacity (no recoveries)."""
    return not schedule.recoveries and not schedule.link_recoveries


def _round_loss(
    spec: ProtocolSpec,
    scenario: Scenario,
    fault_model: Optional[FaultModel],
    seed: int,
) -> Tuple[float, int]:
    """Translate a scenario fault model into round-engine loss knobs.

    The rounds engine models exactly one channel fault: uniform,
    seed-stable message loss.  A :class:`RandomFaultModel` whose profile
    is drop-only (no duplication, no reordering, no per-link overrides)
    maps onto it; any richer adversary raises loudly rather than being
    silently approximated.
    """
    if fault_model is None:
        return 0.0, seed
    profile = getattr(fault_model, "profile", None)
    if (
        isinstance(fault_model, RandomFaultModel)
        and profile is not None
        and profile.duplicate == 0.0
        and profile.reorder == 0.0
        and not getattr(fault_model, "_per_link", None)
    ):
        return profile.drop, getattr(fault_model, "seed", seed)
    raise SimulationError(
        f"scenario {scenario.name!r} uses fault model "
        f"{type(fault_model).__name__}, which the rounds engine of "
        f"protocol {spec.name!r} cannot express (uniform loss only)"
    )


@dataclass(frozen=True)
class CellResult:
    """Outcome of one campaign cell (one run)."""

    topology: str
    scenario: str
    protocol: str
    seed: int
    covered: int
    reachable: int
    delivery_ratio: float
    messages: int
    retransmissions: int
    completion_time: Optional[float]
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """No invariant violated in this cell."""
        return not self.violations

    @property
    def fully_covered(self) -> bool:
        """The run covered the whole survivor component."""
        return self.covered >= self.reachable


def _cell_payload(cell: CellResult) -> dict:
    """JSON-safe checkpoint payload for one cell (see ``_cell_from_payload``)."""
    return {
        "topology": cell.topology,
        "scenario": cell.scenario,
        "protocol": cell.protocol,
        "seed": cell.seed,
        "covered": cell.covered,
        "reachable": cell.reachable,
        "delivery_ratio": cell.delivery_ratio,
        "messages": cell.messages,
        "retransmissions": cell.retransmissions,
        "completion_time": cell.completion_time,
        "violations": list(cell.violations),
    }


def _cell_from_payload(payload: dict) -> CellResult:
    """Rebuild a :class:`CellResult` from its journal payload.

    The round trip is exact: every field is an int, a str, a tuple of
    str, or a float (JSON floats round-trip via ``repr``), so a resumed
    matrix is byte-identical to the uninterrupted one.
    """
    return CellResult(
        topology=payload["topology"],
        scenario=payload["scenario"],
        protocol=payload["protocol"],
        seed=payload["seed"],
        covered=payload["covered"],
        reachable=payload["reachable"],
        delivery_ratio=payload["delivery_ratio"],
        messages=payload["messages"],
        retransmissions=payload["retransmissions"],
        completion_time=payload["completion_time"],
        violations=tuple(payload["violations"]),
    )


@dataclass
class ResilienceMatrix:
    """All cells of one campaign, with rendering and roll-up queries.

    ``failures`` lists cells the supervised executor quarantined (item
    exhausted its retries); such cells have no :class:`CellResult` row
    and make :attr:`all_green` False.
    """

    cells: List[CellResult] = field(default_factory=list)
    failures: List[ItemFailure] = field(default_factory=list)

    def add(self, cell: CellResult) -> None:
        """Record one cell."""
        self.cells.append(cell)

    @property
    def all_green(self) -> bool:
        """True when no cell violated any invariant and none failed to run."""
        return all(cell.ok for cell in self.cells) and not self.failures

    @property
    def violations(self) -> List[Tuple[CellResult, str]]:
        """Every (cell, violation) pair across the campaign."""
        return [
            (cell, violation)
            for cell in self.cells
            for violation in cell.violations
        ]

    def select(
        self,
        topology: Optional[str] = None,
        scenario: Optional[str] = None,
        protocol: Optional[str] = None,
    ) -> List[CellResult]:
        """Cells matching the given labels (None = wildcard)."""
        return [
            cell
            for cell in self.cells
            if (topology is None or cell.topology == topology)
            and (scenario is None or cell.scenario == scenario)
            and (protocol is None or cell.protocol == protocol)
        ]

    def render(self, title: str = "Chaos campaign resilience matrix") -> str:
        """The matrix as an ASCII table, one row per cell."""
        rows = [
            (
                cell.topology,
                cell.scenario,
                cell.protocol,
                cell.seed,
                f"{cell.covered}/{cell.reachable}",
                f"{cell.delivery_ratio:.2%}",
                cell.messages,
                cell.retransmissions,
                "ok" if cell.ok else ";".join(cell.violations),
            )
            for cell in self.cells
        ]
        table = render_table(
            [
                "topology",
                "scenario",
                "protocol",
                "seed",
                "covered",
                "delivery",
                "msgs",
                "retx",
                "invariants",
            ],
            rows,
            title=title,
        )
        if self.failures:
            lines = [
                table,
                "",
                f"execution failures: {len(self.failures)} cell(s) quarantined",
            ]
            lines.extend(f"  {failure.summary()}" for failure in self.failures)
            table = "\n".join(lines)
        return table


class ChaosCampaign:
    """Sweep a scenario × protocol grid over one or more topologies.

    Parameters
    ----------
    topologies:
        ``(name, graph)`` pairs, or ``(name, TopologySpec)`` pairs to
        have the engine build (and memoize) each topology through the
        shared construction cache
        (:data:`repro.exec.cache.GRAPH_CACHE`); the flood source is
        each graph's first node (override per graph with ``sources``).
    protocols:
        Protocol columns; defaults to :func:`standard_protocols`.
    scenarios:
        Adversary rows; defaults to
        :func:`~repro.robustness.scenarios.standard_scenarios`.
    seeds:
        One full grid pass per seed; every random choice inside a cell
        is derived from its seed, so identical seeds reproduce identical
        matrix rows.
    sources:
        Optional ``{topology_name: source_node}`` overrides.
    """

    def __init__(
        self,
        topologies: Sequence[Tuple[str, Union[Graph, TopologySpec]]],
        protocols: Optional[Sequence[ProtocolSpec]] = None,
        scenarios: Optional[Sequence[Scenario]] = None,
        seeds: Sequence[int] = (0,),
        sources: Optional[dict] = None,
    ) -> None:
        if not topologies:
            raise SimulationError("a campaign needs at least one topology")
        if not seeds:
            raise SimulationError("a campaign needs at least one seed")
        self.topologies = list(topologies)
        self.protocols = list(protocols) if protocols is not None else standard_protocols()
        self.scenarios = (
            list(scenarios) if scenarios is not None else standard_scenarios()
        )
        self.seeds = list(seeds)
        self.sources = dict(sources or {})
        self.last_report: ExecutionReport = ExecutionReport()

    # ------------------------------------------------------------------

    def graph_for(self, topology_name: str):
        """The (possibly cache-resolved) graph behind one topology row.

        ``(name, TopologySpec)`` entries are built through the shared
        construction cache on first use, so every cell — and every
        later campaign over the same spec — reuses one graph instance.

        Raises
        ------
        SimulationError
            If the campaign has no topology of that name.
        """
        for name, entry in self.topologies:
            if name == topology_name:
                return self._resolve(entry)
        known = ", ".join(name for name, _ in self.topologies)
        raise SimulationError(
            f"unknown topology {topology_name!r}; known: {known}"
        )

    @staticmethod
    def _resolve(entry: Union[Graph, TopologySpec]):
        if isinstance(entry, TopologySpec):
            graph, _ = GRAPH_CACHE.resolve(entry)
            return graph
        return entry

    def run_cell(
        self,
        topology_name: str,
        graph,
        spec: ProtocolSpec,
        scenario: Scenario,
        seed: int,
    ) -> CellResult:
        """Run one cell: simulate, summarise, check invariants.

        ``graph`` is the injected pre-built topology; pass ``None`` to
        have the campaign resolve it by name (through the construction
        cache when the topology was given as a spec).
        """
        if graph is None:
            graph = self.graph_for(topology_name)
        if spec.engine == "rounds":
            return self._run_round_cell(topology_name, graph, spec, scenario, seed)
        if spec.engine != "event":
            raise SimulationError(
                f"protocol {spec.name!r} names unknown engine {spec.engine!r}"
            )
        if spec.factory is None:
            raise SimulationError(
                f"protocol {spec.name!r} uses the event engine but has no factory"
            )
        source = self.sources.get(
            topology_name, next(iter(graph.iter_nodes()))
        )
        with obs.span(
            "scenario-build", scenario=scenario.name, topology=topology_name
        ):
            setup = scenario.build(graph, source, seed)
            simulator = Simulator()
            network = Network(graph, simulator, fault_model=setup.fault_model)
            trace = TraceCollector()
            network.add_observer(trace)
            apply_schedule(setup.schedule, network, simulator)
            protocol = spec.factory(network, source)
            network.attach(protocol, start_nodes=[source])
        budget = (
            _EVENT_BUDGET_FACTOR
            * max(1, spec.budget_multiplier)
            * (graph.number_of_nodes() + graph.number_of_edges() + 100)
        )
        budget_exhausted = False
        with obs.span(
            "protocol-run",
            protocol=spec.name,
            scenario=scenario.name,
            topology=topology_name,
            seed=seed,
        ):
            try:
                simulator.run(max_events=budget)
            except SimulationError:
                budget_exhausted = True
        result = summarize_run(
            spec.name, graph, source, setup.schedule, network
        )
        record = RunRecord(
            graph=graph,
            source=source,
            schedule=setup.schedule,
            network=network,
            simulator=simulator,
            trace=trace,
            protocol=protocol,
            result=result,
            budget_exhausted=budget_exhausted,
            guarantees_delivery=spec.guarantees_delivery,
        )
        with obs.span("invariant-check"):
            violations = check_invariants(record)
        obs.counter("campaign.cells")
        if violations:
            obs.counter("campaign.violations", len(violations))
        return CellResult(
            topology=topology_name,
            scenario=scenario.name,
            protocol=spec.name,
            seed=seed,
            covered=result.covered,
            reachable=result.reachable,
            delivery_ratio=result.delivery_ratio,
            messages=result.messages,
            retransmissions=getattr(protocol, "retransmissions", 0),
            completion_time=result.completion_time,
            violations=tuple(str(v) for v in violations),
        )

    def _run_round_cell(
        self,
        topology_name: str,
        graph,
        spec: ProtocolSpec,
        scenario: Scenario,
        seed: int,
    ) -> CellResult:
        """One cell on the synchronous rounds engine (oracle-friendly).

        The scenario's failure schedule drives
        :func:`~repro.flooding.rounds.round_flood` directly on the
        topology's oracle; its fault model is translated to the engine's
        uniform loss knob (anything richer is refused loudly — see
        :func:`_round_loss`).  Afterwards the damaged topology is
        recertified from its :class:`~repro.graphs.faultview.FaultView`
        whenever the topology row was given as a spec (so k is known).

        Coverage is enforced only where it is a theorem: zero loss and
        a monotone schedule (no recoveries).  With recoveries or loss a
        shortfall is data, exactly as for best-effort event protocols.
        """
        source = self.sources.get(
            topology_name, next(iter(graph.iter_nodes()))
        )
        with obs.span(
            "scenario-build", scenario=scenario.name, topology=topology_name
        ):
            setup = scenario.build(graph, source, seed)
        loss_rate, loss_seed = _round_loss(spec, scenario, setup.fault_model, seed)
        with obs.span(
            "protocol-run",
            protocol=spec.name,
            scenario=scenario.name,
            topology=topology_name,
            seed=seed,
        ):
            flood = round_flood(
                graph,
                source,
                schedule=setup.schedule,
                loss_rate=loss_rate,
                loss_seed=loss_seed,
            )
        violations: List[InvariantViolation] = []
        enforce_coverage = (
            spec.guarantees_delivery
            and loss_rate == 0.0
            and _monotone(setup.schedule)
        )
        if enforce_coverage and not flood.fully_covered:
            violations.append(
                InvariantViolation(
                    "coverage",
                    f"covered {flood.covered} of {flood.reachable} "
                    f"reachable survivors",
                )
            )
        topo_spec = self._spec_for(topology_name)
        if topo_spec is not None:
            view = survivors(graph, setup.schedule)
            if isinstance(view, FaultView):
                with obs.span("invariant-check"):
                    violations.extend(recertify_survivors(view, topo_spec.k))
        obs.counter("campaign.cells")
        if violations:
            obs.counter("campaign.violations", len(violations))
        return CellResult(
            topology=topology_name,
            scenario=scenario.name,
            protocol=spec.name,
            seed=seed,
            covered=flood.covered,
            reachable=flood.reachable,
            delivery_ratio=flood.delivery_ratio,
            messages=flood.messages,
            retransmissions=0,
            completion_time=flood.completion_time,
            violations=tuple(str(v) for v in violations),
        )

    def _spec_for(self, topology_name: str) -> Optional[TopologySpec]:
        """The :class:`TopologySpec` behind a topology row, if it has one."""
        for name, entry in self.topologies:
            if name == topology_name and isinstance(entry, TopologySpec):
                return entry
        return None

    def cell_key(
        self, topology_name: str, scenario_name: str, protocol_name: str, seed: int
    ) -> str:
        """Stable checkpoint key for one cell of this campaign's grid.

        The key hashes the topology's *construction identity* — for a
        :class:`TopologySpec` entry its ``(n, k, rule)`` parameters, for
        a pre-built graph its name and size — together with the
        scenario, protocol and seed, via SHA-256
        (:func:`~repro.exec.checkpoint.checkpoint_key`).  Two topology
        entries that collide on display name but differ in parameters
        therefore get distinct keys, never a silent checkpoint hit.
        """
        for name, entry in self.topologies:
            if name == topology_name:
                if isinstance(entry, TopologySpec):
                    # the dict backend keeps its pre-backend identity so
                    # existing checkpoint journals still resume cleanly
                    identity: Tuple = ("spec", entry.n, entry.k, entry.rule)
                    if entry.backend != "dict":
                        identity += (entry.backend,)
                else:
                    identity = (
                        "graph",
                        entry.name,
                        entry.number_of_nodes(),
                        entry.number_of_edges(),
                    )
                return checkpoint_key(
                    "chaos-cell",
                    topology_name,
                    *identity,
                    scenario_name,
                    protocol_name,
                    seed,
                )
        raise SimulationError(f"unknown topology {topology_name!r}")

    def run(
        self,
        workers: Optional[int] = None,
        checkpoint: Optional[Union[str, Path, CheckpointJournal]] = None,
        resume: bool = False,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        supervisor: Optional[SupervisorConfig] = None,
    ) -> ResilienceMatrix:
        """Run every cell of the grid; return the populated matrix.

        Parameters
        ----------
        workers:
            Fan the cells out across this many worker processes via the
            execution engine (:mod:`repro.exec`).  ``None``/``1`` run
            serially.  Cell order in the matrix, and every cell's
            content, are identical for any worker count: each cell is a
            pure function of (topology, protocol, scenario, seed), and
            results are collected positionally.  The per-cell timing and
            cache statistics of the latest run land in
            :attr:`last_report`.
        checkpoint:
            Path of (or an open) append-only
            :class:`~repro.exec.checkpoint.CheckpointJournal`; every
            completed cell is journaled the moment it finishes, so an
            interrupted campaign can be resumed.
        resume:
            Skip cells already present in the checkpoint journal and
            merge them back in grid order — the resumed matrix is
            byte-identical to an uninterrupted run.
        timeout:
            Per-cell wall-clock budget in seconds; an overdue cell's
            worker is SIGKILLed and the cell retried (supervised mode).
        retries:
            Retry attempts per failing cell before it is quarantined as
            an :class:`~repro.exec.supervisor.ItemFailure` in
            ``matrix.failures`` (default 2 once supervision is active).
        supervisor:
            Full :class:`~repro.exec.supervisor.SupervisorConfig` for
            callers needing every knob (fault hooks, backoff shape);
            overrides ``timeout``/``retries``.

        Any of ``checkpoint``/``timeout``/``retries``/``supervisor``
        switches execution to the supervised pool, which also survives
        worker crashes and hangs; with none of them the bare
        deterministic fork pool runs as before.
        """
        with obs.span(
            "campaign",
            topologies=len(self.topologies),
            scenarios=len(self.scenarios),
            protocols=len(self.protocols),
            seeds=len(self.seeds),
        ) as campaign_span:
            return self._run_grid(
                campaign_span,
                workers=workers,
                checkpoint=checkpoint,
                resume=resume,
                timeout=timeout,
                retries=retries,
                supervisor=supervisor,
            )

    def _run_grid(
        self,
        campaign_span,
        workers: Optional[int],
        checkpoint: Optional[Union[str, Path, CheckpointJournal]],
        resume: bool,
        timeout: Optional[float],
        retries: Optional[int],
        supervisor: Optional[SupervisorConfig],
    ) -> ResilienceMatrix:
        # Resolve every topology once, up front, so spec-given graphs
        # are constructed (and cache-counted) in the parent process and
        # inherited by forked workers instead of rebuilt per cell.
        resolved = []
        for name, entry in self.topologies:
            with obs.span("graph-build", topology=name) as build_span:
                graph = self._resolve(entry)
                build_span.set(
                    n=graph.number_of_nodes(), m=graph.number_of_edges()
                )
            resolved.append((name, graph))
        cells = [
            (topology_name, graph, spec, scenario, seed)
            for topology_name, graph in resolved
            for scenario in self.scenarios
            for spec in self.protocols
            for seed in self.seeds
        ]
        labels = [
            f"{name}/{scenario.name}/{spec.name}/s{seed}"
            for name, _, spec, scenario, seed in cells
        ]
        journal = open_journal(checkpoint, resume)
        keys = None
        done = {}
        if journal is not None:
            keys = [
                self.cell_key(name, scenario.name, spec.name, seed)
                for name, _, spec, scenario, seed in cells
            ]
            for position, key in enumerate(keys):
                payload = journal.get(key)
                if payload is not None:
                    done[position] = _cell_from_payload(payload)
        todo = [i for i in range(len(cells)) if i not in done]
        campaign_span.set(cells=len(cells), resumed=len(done))

        supervised = (
            supervisor is not None
            or journal is not None
            or timeout is not None
            or retries is not None
        )
        config = None
        if supervised:
            config = supervisor or SupervisorConfig(
                timeout=timeout, retries=2 if retries is None else retries
            )
            if journal is not None:
                chained = config.on_result

                def journal_result(position: int, value: object) -> None:
                    if isinstance(value, CellResult):
                        journal.record(
                            keys[todo[position]],
                            _cell_payload(value),
                            label=labels[todo[position]],
                        )
                    if chained is not None:
                        chained(position, value)

                config = replace(config, on_result=journal_result)

        pool = WorkerPool(workers=workers, cache=GRAPH_CACHE, supervisor=config)
        try:
            results = pool.map(
                lambda cell: self.run_cell(*cell),
                [cells[i] for i in todo],
                labels=[labels[i] for i in todo],
            )
        finally:
            if journal is not None:
                journal.close()
        self.last_report = pool.last_report
        matrix = ResilienceMatrix(failures=list(pool.last_report.failures))
        fresh = iter(results)
        for position in range(len(cells)):
            value = done[position] if position in done else next(fresh)
            if isinstance(value, CellResult):
                matrix.add(value)
        return matrix
