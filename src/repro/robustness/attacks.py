"""Targeted cut attacks computed from the JD pasting arithmetic.

The paper's k−1 tolerance claim is only interesting at its *weakest*
cuts.  In the Jenkins–Demers construction those are known in closed
form: every shared leaf hangs off exactly the k copies of one interior
— its neighbourhood *is* a minimum node cut — so the cheapest ways to
hurt the graph are to crash (or unlink) k−1 of a leaf's parent copies,
leaving the leaf dangling by a single edge, or to take the root
interior out of k−1 copies at once.  None of this needs edge
enumeration: the :class:`~repro.graphs.implicit.ImplicitJDOracle`
answers ``neighbors(leaf)`` arithmetically, so a million-node attack
plan costs O(k) to derive.

:func:`targeted_cut_attacks` emits one :class:`AttackPlan` per known
weak spot — shallowest / median / deepest structural leaf, an added
(paired) leaf when the plan has extra pairs, the root copies, plus
single-failure probes that leave residual connectivity ≥ 2 (the
regime the local cut recertification must certify).  Every plan stays
within the k−1 budget the paper tolerates, so a correct construction
must keep the survivor component connected and fully floodable under
every one of them; :mod:`bench_f17_scale_chaos` proves exactly that at
n = 10⁶.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GraphError
from repro.graphs.implicit import ImplicitJDOracle
from repro.graphs.oracle import NeighborOracle, oracle_has_node


@dataclass(frozen=True)
class AttackPlan:
    """One targeted attack: nodes to crash and links to cut at t = 0."""

    name: str
    crashes: Tuple[int, ...] = ()
    link_kills: Tuple[Tuple[int, int], ...] = ()
    description: str = ""

    @property
    def damage(self) -> int:
        """Total failure count (crashes plus killed links)."""
        return len(self.crashes) + len(self.link_kills)

    def schedule(self):
        """The plan as a time-0 :class:`FailureSchedule`."""
        from repro.flooding.failures import FailureSchedule

        schedule = FailureSchedule()
        for node in self.crashes:
            schedule.crash(node, time=0.0)
        for u, v in self.link_kills:
            schedule.fail_link(u, v, time=0.0)
        return schedule

    def surviving_source(self, oracle: NeighborOracle) -> int:
        """The first node of ``oracle`` the plan does not crash.

        Raises
        ------
        GraphError
            If the plan crashes every node (cannot happen for plans
            within the k−1 budget on graphs with n ≥ k).
        """
        down = set(self.crashes)
        for node in oracle.iter_nodes():
            if node not in down:
                return node
        raise GraphError(f"attack {self.name!r} leaves no survivor")


def _leaf_targets(oracle: ImplicitJDOracle) -> List[Tuple[str, int]]:
    """(tag, leaf id) pairs naming the structurally distinct weak leaves."""
    leaf_base = oracle.k * oracle._m
    live = oracle._live
    targets = [("shallowest-leaf", leaf_base)]
    if live > 2:
        targets.append(("median-leaf", leaf_base + live // 2))
    if live > 1:
        targets.append(("deepest-leaf", leaf_base + live - 1))
    if oracle._pairs > 0:
        targets.append(("added-leaf", leaf_base + live))
    seen = set()
    unique = []
    for tag, leaf in targets:
        if leaf not in seen:
            seen.add(leaf)
            unique.append((tag, leaf))
    return unique


def targeted_cut_attacks(oracle: ImplicitJDOracle) -> List[AttackPlan]:
    """Every known weakest-cut attack within the k−1 budget.

    Plans are derived arithmetically from the pasting structure — a
    leaf's neighbourhood is its k parent copies — so generation is
    O(k) per plan regardless of n.  Each plan is validated against the
    oracle (budget ≤ k − 1, crashes are real nodes, killed links are
    real edges) before being returned.

    Raises
    ------
    GraphError
        If ``oracle`` is not an :class:`ImplicitJDOracle` (the plans
        come from the JD arithmetic; materialised backends can replay
        the returned schedules but cannot derive them), or if a
        generated plan fails validation.
    """
    if not isinstance(oracle, ImplicitJDOracle):
        raise GraphError(
            "targeted_cut_attacks needs the implicit JD oracle, got "
            f"{type(oracle).__name__}"
        )
    k, m = oracle.k, oracle._m
    budget = k - 1
    plans: List[AttackPlan] = []

    for tag, leaf in _leaf_targets(oracle):
        parents = sorted(oracle.neighbors(leaf))  # the k parent copies
        plans.append(
            AttackPlan(
                name=f"isolate:{tag}",
                crashes=tuple(parents[:budget]),
                description=(
                    f"crash k−1 of leaf {leaf}'s parent copies — the leaf "
                    f"survives on a single edge"
                ),
            )
        )
        plans.append(
            AttackPlan(
                name=f"cut-links:{tag}",
                link_kills=tuple((leaf, p) for p in parents[:budget]),
                description=(
                    f"sever k−1 of leaf {leaf}'s attachment links — same "
                    f"cut, zero collateral"
                ),
            )
        )
        if tag == "shallowest-leaf" and budget >= 2:
            plans.append(
                AttackPlan(
                    name=f"mixed:{tag}",
                    crashes=(parents[0],),
                    link_kills=tuple((leaf, p) for p in parents[1:budget]),
                    description=(
                        f"one parent crash plus k−2 link cuts around leaf "
                        f"{leaf} — mixed damage totalling k−1"
                    ),
                )
            )

    plans.append(
        AttackPlan(
            name="root-copies",
            crashes=tuple(copy * m for copy in range(budget)),
            description="crash the root interior of k−1 copies at once",
        )
    )
    if oracle._pairs > 0 and budget >= 2:
        first_added = oracle.k * m + oracle._live
        plans.append(
            AttackPlan(
                name="twin-leaves",
                crashes=(first_added, first_added + 1),
                description=(
                    "crash an added-leaf twin pair — both hang off the "
                    "same host's k copies"
                ),
            )
        )
    # single-failure probes: residual connectivity k−1 ≥ 2 for k ≥ 3,
    # the regime where recertification must run a real cut check
    first_leaf = oracle.k * m
    first_parent = min(oracle.neighbors(first_leaf))
    plans.append(
        AttackPlan(
            name="probe:single-node",
            crashes=(first_parent,),
            description="crash one parent copy of the shallowest leaf",
        )
    )
    plans.append(
        AttackPlan(
            name="probe:single-link",
            link_kills=((first_leaf, first_parent),),
            description="sever one attachment link of the shallowest leaf",
        )
    )

    for plan in plans:
        _validate(plan, oracle, budget)
    return plans


def _validate(plan: AttackPlan, oracle: NeighborOracle, budget: int) -> None:
    """Refuse plans outside the tolerance budget or off the graph."""
    if plan.damage == 0 or plan.damage > budget:
        raise GraphError(
            f"attack {plan.name!r} has damage {plan.damage}, "
            f"outside 1 … {budget}"
        )
    if len(set(plan.crashes)) != len(plan.crashes):
        raise GraphError(f"attack {plan.name!r} repeats a crash target")
    for node in plan.crashes:
        if not oracle_has_node(oracle, node):
            raise GraphError(
                f"attack {plan.name!r} crashes unknown node {node!r}"
            )
    for u, v in plan.link_kills:
        if not oracle.has_edge(u, v):  # type: ignore[attr-defined]
            raise GraphError(
                f"attack {plan.name!r} cuts non-edge ({u!r}, {v!r})"
            )
