"""Post-run invariant checks for chaos campaign cells.

Every campaign run finishes with a battery of checks over the *whole*
simulation record — the result, the final network/simulator state and
the full event trace — so a harness bug (a delivery to a dead node, a
runaway retransmission loop) fails loudly instead of silently skewing a
resilience matrix:

* **coverage** — every node of the survivor component received the
  payload (enforced only for protocols that *guarantee* delivery; for
  best-effort protocols the shortfall is data, not a bug);
* **quiescence** — the simulator drained its queue naturally (no
  pending events, no exhausted event budget): the protocol terminated;
* **no-dead-delivery** — replayed from the trace: no ``deliver`` event
  targets a node inside one of its down windows;
* **retransmission-budget** — the protocol's retransmission counter
  respects its declared per-frame retry budget.

The long-running service (:mod:`repro.service`) checks a second kind
of invariant on a cadence: not one run's *record* but the overlay's
current *topology* — Properties 1–4 of the paper's LHG definition.
:func:`check_topology_invariants` bridges
:func:`repro.core.properties.check_lhg` into the same
:class:`InvariantViolation` vocabulary so campaign cells and the soak
loop report failures through one channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Set

from repro.core.properties import check_lhg
from repro.flooding.failures import FailureSchedule
from repro.flooding.metrics import FloodResult
from repro.flooding.network import Network, Protocol
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector
from repro.graphs.connectivity import local_node_connectivity, node_connectivity
from repro.graphs.faultview import FaultView, component_size
from repro.graphs.graph import Graph
from repro.graphs.oracle import NeighborOracle, materialize

NodeId = Hashable


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant: which one, and what was observed."""

    invariant: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.invariant}: {self.detail}"


@dataclass
class RunRecord:
    """Everything one campaign run leaves behind for the checkers."""

    graph: Graph
    source: NodeId
    schedule: FailureSchedule
    network: Network
    simulator: Simulator
    trace: TraceCollector
    protocol: Protocol
    result: FloodResult
    budget_exhausted: bool = False
    guarantees_delivery: bool = False


def check_survivor_coverage(record: RunRecord) -> Optional[InvariantViolation]:
    """Full coverage of the survivor component (see module docstring)."""
    result = record.result
    if result.fully_covered:
        return None
    return InvariantViolation(
        "coverage",
        f"covered {result.covered} of {result.reachable} reachable survivors",
    )


def check_quiescence(record: RunRecord) -> Optional[InvariantViolation]:
    """The simulation terminated by draining its queue."""
    if record.budget_exhausted:
        return InvariantViolation(
            "quiescence", "event budget exhausted — runaway protocol?"
        )
    pending = record.simulator.pending_events
    if pending:
        return InvariantViolation(
            "quiescence", f"{pending} events still pending after the run"
        )
    return None


def check_no_dead_delivery(record: RunRecord) -> Optional[InvariantViolation]:
    """No trace ``deliver`` event targets a currently-down node.

    Replays the trace in order, tracking each node's down windows from
    its own ``crash`` / ``recover`` events — the network is supposed to
    drop these messages, so a hit means the harness itself is broken.
    """
    down: Set[NodeId] = set()
    for event in record.trace.events:
        if event.kind == "crash":
            down.add(event.node)
        elif event.kind == "recover":
            down.discard(event.node)
        elif event.kind == "deliver" and event.receiver in down:
            return InvariantViolation(
                "no-dead-delivery",
                f"delivery to crashed node {event.receiver!r} at t={event.time}",
            )
    return None


def check_retransmission_budget(record: RunRecord) -> Optional[InvariantViolation]:
    """Retransmissions stay within the protocol's declared budget.

    Protocols expose ``retransmissions`` plus either an explicit
    ``retry_budget`` (the ARQ layer) or ``max_retries`` with
    ``data_sent`` (ReliableFlood: budget = max_retries × distinct
    frames).  Protocols without these counters pass vacuously.
    """
    protocol = record.protocol
    retransmissions = getattr(protocol, "retransmissions", None)
    if retransmissions is None:
        return None
    budget = getattr(protocol, "retry_budget", None)
    if budget is None:
        max_retries = getattr(protocol, "max_retries", None)
        data_sent = getattr(protocol, "data_sent", None)
        if max_retries is None or data_sent is None:
            return None
        budget = max_retries * max(0, data_sent - retransmissions)
    if retransmissions > budget:
        return InvariantViolation(
            "retransmission-budget",
            f"{retransmissions} retransmissions exceed the budget of {budget}",
        )
    return None


_PROPERTY_VIOLATIONS = {
    "P1": ("P1-node-connectivity", "κ < {k}"),
    "P2": ("P2-link-connectivity", "λ < {k}"),
    "P3": ("P3-link-minimality", "a removable link exists"),
    "P4": ("P4-log-diameter", "diameter exceeds the logarithmic budget"),
}


def _certificate_violations(proofs, n: int, k: int) -> List[InvariantViolation]:
    """Map a :class:`StructuralProofs` verdict onto violation records."""
    violations = []
    for witness in proofs.witnesses:
        name, detail = _PROPERTY_VIOLATIONS[witness.property_id]
        if not witness.conclusive:
            violations.append(
                InvariantViolation(
                    name,
                    f"structural certificate inconclusive at n={n}: "
                    f"{witness.details}",
                )
            )
        elif not witness.holds:
            violations.append(
                InvariantViolation(name, f"{detail.format(k=k)} at n={n}")
            )
    return violations


def check_topology_invariants(
    graph: NeighborOracle,
    k: int,
    expect_lhg: bool = True,
    certificate=None,
    exact_limit: int = 512,
) -> List[InvariantViolation]:
    """Check the overlay topology against Properties 1–4 (see module doc).

    With ``expect_lhg=True`` the graph must satisfy the full LHG bundle
    for ``k`` — P1 k-node connectivity, P2 k-link connectivity, P3 link
    minimality, P4 logarithmic diameter — each failing property becomes
    one violation.  With ``expect_lhg=False`` (the bootstrap regime
    below n = 2k, where no LHG exists) only the complete-graph bound is
    enforced: node connectivity ≥ min(n − 1, k).

    ``graph`` may be any :class:`~repro.graphs.oracle.NeighborOracle`.
    Up to ``exact_limit`` nodes the exact Dinic-backed checkers run
    (read-only backends are materialised first), so the soak loop and
    chaos campaigns gate exactly as before.  Beyond it the check
    switches to **structural certificates**: the oracle's own
    :meth:`structural_proofs` when it has one (the implicit JD oracle),
    else proofs derived from the ``certificate`` argument (a
    :class:`~repro.core.certificates.ConstructionCertificate`).  With
    neither available the exact path runs regardless of size — correct,
    but O(k·n·m); pass the certificate at scale.

    Returns the violations — an empty list means the topology is sound.
    """
    n = graph.num_nodes()
    if n <= 1:
        return []
    if expect_lhg and isinstance(graph, FaultView):
        # failures invalidate pristine-construction certificates; the
        # survivor component gets its own certification battery
        return recertify_survivors(graph, k, exact_limit=exact_limit)
    use_certificates = expect_lhg and n > exact_limit
    if use_certificates:
        prove = getattr(graph, "structural_proofs", None)
        if prove is not None:
            return _certificate_violations(prove(), n, k)
        if certificate is not None:
            from repro.core.certificates import structural_proofs

            return _certificate_violations(structural_proofs(certificate), n, k)
    if not isinstance(graph, Graph):
        graph = materialize(graph)
    if not expect_lhg:
        target = min(n - 1, k)
        connectivity = node_connectivity(graph)
        if connectivity < target:
            return [
                InvariantViolation(
                    "bootstrap-connectivity",
                    f"κ={connectivity} below the bootstrap bound {target} "
                    f"at n={n}",
                )
            ]
        return []
    report = check_lhg(graph, k)
    violations = []
    for name, ok, detail in (
        ("P1-node-connectivity", report.node_connected, f"κ < {k}"),
        ("P2-link-connectivity", report.link_connected, f"λ < {k}"),
        ("P3-link-minimality", report.link_minimal, "a removable link exists"),
        (
            "P4-log-diameter",
            report.log_diameter,
            f"diameter {report.diameter} exceeds budget "
            f"{report.diameter_budget}",
        ),
    ):
        if not ok:
            violations.append(InvariantViolation(name, f"{detail} at n={n}"))
    return violations


# ----------------------------------------------------------------------
# Survivor recertification (FaultView topologies)
# ----------------------------------------------------------------------

_LOCAL_SAMPLE = 12
_LOCAL_RADII = (3, 5)
_FAR_SINK = ("__far-sink__",)


def recertify_survivors(
    view: FaultView, k: int, exact_limit: int = 512
) -> List[InvariantViolation]:
    """Re-certify a damaged topology from its :class:`FaultView`.

    A structural certificate proves properties of the *pristine*
    construction; once nodes or links have failed it says nothing, so
    the survivor component earns its own battery — every check either
    proves its claim or reports itself inconclusive, never a silent
    wrong verdict:

    1. **survivor-connectivity** (exact at any scale): a BFS sweep of
       the view.  Removing d < k vertices/links from a k-connected
       graph cannot disconnect it, so an unreachable survivor under
       damage < k is a violation; with damage ≥ k a partition is a
       legitimate outcome, not a harness bug.
    2. **survivor-degree** (exact): every node on the damage frontier
       must keep degree ≥ k − damage — Whitney's bound localised to
       the only nodes whose neighbourhoods changed.
    3. **cut recheck** (when k − damage ≥ 2): below ``exact_limit``
       survivors the view is materialised and exact Dinic
       ``node_connectivity`` must reach k − damage.  Above it, each
       sampled damage-frontier node must exhibit k − damage
       vertex-disjoint paths out of its radius-bounded ball (disjoint
       paths in an induced subgraph are disjoint in the full view, so
       success is a conclusive lower-bound witness); a node with no
       witness at the largest radius reports **survivor-local-cut**
       as *inconclusive* rather than claiming soundness.

    An undamaged view delegates to :func:`check_topology_invariants`
    on its base (pristine certificates apply again).
    """
    if view.damage == 0:
        return check_topology_invariants(view.base, k, exact_limit=exact_limit)
    n_alive = view.num_nodes()
    if n_alive <= 1:
        return []
    damage = view.damage
    residual = k - damage
    violations: List[InvariantViolation] = []

    source = next(iter(view.iter_nodes()))
    reached = component_size(view, source)
    connected = reached == n_alive
    if not connected and damage < k:
        violations.append(
            InvariantViolation(
                "survivor-connectivity",
                f"{n_alive - reached} of {n_alive} survivors unreachable "
                f"after only {damage} failure(s) < k={k}",
            )
        )

    frontier = view.damage_frontier()
    floor = max(0, residual)
    for node in frontier:
        degree = view.degree(node)
        if degree < floor:
            violations.append(
                InvariantViolation(
                    "survivor-degree",
                    f"node {node!r} kept degree {degree} < "
                    f"k−damage={floor} beside the damage",
                )
            )

    if connected and residual >= 2:
        if n_alive <= exact_limit:
            kappa = node_connectivity(materialize(view))
            target = min(residual, n_alive - 1)
            if kappa < target:
                violations.append(
                    InvariantViolation(
                        "survivor-connectivity",
                        f"exact κ={kappa} < k−damage={target} after "
                        f"{damage} failure(s)",
                    )
                )
        else:
            violations.extend(_local_cut_recheck(view, residual, frontier))
    return violations


def _local_cut_recheck(
    view: FaultView, residual: int, frontier: List[NodeId]
) -> List[InvariantViolation]:
    """Bounded Dinic witnesses around the damage (see docstring above)."""
    if not frontier:
        return []
    step = max(1, len(frontier) // _LOCAL_SAMPLE)
    sampled = frontier[::step][:_LOCAL_SAMPLE]
    violations = []
    for node in sampled:
        if any(
            _local_cut_witness(view, node, residual, radius)
            for radius in _LOCAL_RADII
        ):
            continue
        violations.append(
            InvariantViolation(
                "survivor-local-cut",
                f"no conclusive {residual}-disjoint-path witness for "
                f"{node!r} within radius {_LOCAL_RADII[-1]} of the damage "
                f"— inconclusive, not certified",
            )
        )
    return violations


def _local_cut_witness(
    view: FaultView, source: NodeId, residual: int, radius: int
) -> bool:
    """True iff ``source`` provably keeps ``residual`` disjoint paths.

    Builds the induced radius-ball around ``source`` on the view and
    asks Dinic for ``residual`` vertex-disjoint paths from ``source``
    to a virtual sink behind the ball boundary.  Disjoint paths in an
    induced subgraph are disjoint in the full view, so ``True`` is
    conclusive; ``False`` only means "not witnessed at this radius".
    When the whole component fits inside the ball the check is exact
    instead.
    """
    levels = {source: 0}
    ring = [source]
    depth = 0
    while ring and depth < radius:
        depth += 1
        next_ring = []
        for v in ring:
            for w in view.neighbors(v):
                if w not in levels:
                    levels[w] = depth
                    next_ring.append(w)
        ring = next_ring
    ball = Graph()
    for v in levels:
        ball.add_node(v)
        for w in view.neighbors(v):
            if w in levels and not ball.has_edge(v, w):
                ball.add_edge(v, w)
    boundary = [v for v, d in levels.items() if d == radius]
    if not boundary:
        # the component fits entirely in the ball: exact connectivity
        target = min(residual, len(levels) - 1)
        if target <= 0:
            return True
        return node_connectivity(ball) >= target
    for v in boundary:
        ball.add_edge(v, _FAR_SINK)
    return (
        local_node_connectivity(ball, source, _FAR_SINK, cutoff=residual)
        >= residual
    )


_ALWAYS = (
    check_quiescence,
    check_no_dead_delivery,
    check_retransmission_budget,
)


def check_invariants(record: RunRecord) -> List[InvariantViolation]:
    """Run every applicable invariant; return the violations (ideally none).

    The coverage invariant is enforced only when the record's protocol
    ``guarantees_delivery`` — a best-effort protocol losing coverage
    under chaos is a *measurement*, not a harness bug.
    """
    violations = []
    if record.guarantees_delivery:
        violation = check_survivor_coverage(record)
        if violation is not None:
            violations.append(violation)
    for checker in _ALWAYS:
        violation = checker(record)
        if violation is not None:
            violations.append(violation)
    return violations
