"""Command-line interface: ``python -m repro`` or the ``repro-lhg`` script.

Subcommands:

* ``build``    — construct an LHG for (n, k) and print a summary (or a
  JSON edge list with ``--json``);
* ``check``    — verify LHG Properties 1–5 for a built pair;
* ``flood``    — simulate a flood with optional random crashes;
* ``chaos``    — run a chaos campaign (scenario × protocol resilience
  matrix with invariant checks; ``--workers`` fans the grid across
  cores with results identical to a serial run; ``--timeout`` /
  ``--retries`` supervise the workers and ``--checkpoint`` /
  ``--resume`` journal completed cells for restart);
* ``coverage`` — print the per-rule existence table for a k;
* ``diameter`` — compare Harary vs LHG diameters over an n sweep;
* ``paths``    — show the k node-disjoint Menger paths between two nodes;
* ``spectral`` — algebraic connectivity vs the Harary baseline;
* ``soak``     — run the overlay as a long-lived service under Poisson
  churn and a Zipf broadcast workload, with online repair, graceful
  degradation and SLO tracking (``--checkpoint`` / ``--resume`` make a
  killed soak resumable with a byte-identical report); exit code 0 when
  SLOs hold, 1 on an SLO violation, 2 on usage errors;
* ``scale``    — build the (n, k) LHG as an *implicit* oracle (no
  materialised graph), certify Properties 1–4 by structural
  certificate, optionally compile to CSR and flood in synchronous
  rounds; reports peak RSS, so ``scale 1000000 3 --flood`` is the
  million-node smoke test;
* ``trace``    — summarise or convert a ``--telemetry`` JSONL log
  (``trace summary run.jsonl``, ``trace chrome run.jsonl -o t.json``);
* ``prof``     — run the flooding simulator under the span-attributed
  sampling profiler (``prof 1024 4 --hz 100 -o flood.collapsed``); the
  collapsed-stack output loads directly in speedscope/flamegraph.pl;
  exit 1 when no samples landed (run too short for the rate);
* ``perf``     — benchmark regression ledger: ``perf record`` adopts
  the BENCH_*.json results as the committed baseline, ``perf diff``
  compares fresh results against it, ``perf check`` exits 1 when any
  metric regressed beyond its noise-aware tolerance band (the CI
  perf-gate);
* ``lint``     — static determinism & fork-safety analysis
  (``lint src/repro --baseline lint-baseline.json``); exit code 0 when
  clean, 1 on findings, 2 on usage/internal errors.

``build``, ``flood``, ``chaos``, ``soak`` and ``diameter`` accept ``--telemetry
PATH`` (stream the run's JSONL event log to PATH as events happen,
holding at most a bounded buffer in memory) and ``--log-json`` (stream
events to stderr).  Telemetry is passive: enabling it changes no
computed result, only what is recorded.  ``soak`` additionally accepts
``--metrics PATH`` / ``--openmetrics PATH`` to export live metrics
snapshots on a tick cadence while the service runs.

Every command is a thin veneer over the library API, so anything shown
here can be scripted directly in Python.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg, coverage_table
from repro.core.properties import check_lhg
from repro.errors import ReproError
from repro.flooding.experiments import run_flood
from repro.flooding.failures import random_crashes
from repro.graphs.generators.harary import harary_graph
from repro.graphs.io import to_json
from repro.graphs.traversal import diameter


#: Events the telemetry collector may hold in memory while streaming.
#: Everything already on disk beyond this cap is evicted from the
#: buffer, so an arbitrarily long soak runs in bounded memory.
_TELEMETRY_BUFFER_CAP = 4096


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace):
    """Install a telemetry collector for one CLI invocation when asked.

    ``--telemetry PATH`` streams the JSONL event log to PATH as events
    are recorded (bounded in-memory buffer — see
    :data:`_TELEMETRY_BUFFER_CAP`); ``--log-json`` streams each event
    to stderr.  A ``cli:<command>`` root span wraps the whole command,
    and the final metrics registry is appended as one
    ``metrics-snapshot`` event so the log is self-contained.
    """
    from repro import obs

    path = getattr(args, "telemetry", None)
    stream = getattr(args, "log_json", False)
    if path is None and not stream:
        yield
        return
    # Open eagerly: an unwritable path fails before any work is done.
    handle = open(path, "w", encoding="utf-8") if path is not None else None
    sinks = []
    if stream:
        sinks.append(obs.JsonlSink(sys.stderr))
    if handle is not None:
        sinks.append(obs.JsonlSink(handle))
    if len(sinks) == 1:
        sink = sinks[0]
    else:
        def sink(event):
            for each in sinks:
                each(event)
    collector = obs.install(
        obs.Collector(sink=sink, max_buffered=_TELEMETRY_BUFFER_CAP)
    )
    try:
        with obs.span(f"cli:{args.command}"):
            yield
    finally:
        collector.emit(
            "metrics-snapshot",
            kind="metrics",
            attrs=collector.metrics.snapshot(),
        )
        obs.uninstall()
        if handle is not None:
            handle.close()
            print(
                f"telemetry: {collector.events_recorded} event(s) "
                f"written to {path}",
                file=sys.stderr,
            )


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    events = obs.read_jsonl(args.file)
    problems = obs.validate_events(events)
    if args.action == "summary":
        print(obs.summarize_events(events))
        if problems:
            print(f"\n{len(problems)} schema problem(s):", file=sys.stderr)
            for problem in problems[:10]:
                print(f"  {problem}", file=sys.stderr)
            return 1
        return 0
    # chrome: convert to a trace_event JSON file for Perfetto
    output = args.output or (args.file + ".trace.json")
    count = obs.write_chrome_trace(events, output)
    print(f"wrote {count} trace event(s) to {output}")
    print("open https://ui.perfetto.dev (or chrome://tracing) and load it")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintConfig,
        apply_baseline,
        build_project,
        lint_paths,
        lint_project,
        load_baseline,
        render_graph_dot,
        render_graph_json,
        render_json,
        render_sarif,
        render_text,
        rule_ids,
        write_baseline,
    )

    config = LintConfig()
    if args.select:
        unknown = sorted(set(args.select) - set(rule_ids()))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {unknown}; known: {', '.join(rule_ids())}"
            )
        config = LintConfig(select=tuple(args.select))
    exclude = tuple(args.exclude or ())
    if args.graph is not None:
        project, parse_findings = build_project(
            args.paths, config=config, exclude=exclude
        )
        for finding in parse_findings:
            print(finding.format(), file=sys.stderr)
        renderer = (
            render_graph_dot if args.graph == "dot" else render_graph_json
        )
        print(renderer(project))
        return 0 if not parse_findings else 1
    if args.project:
        result = lint_project(args.paths, config=config, exclude=exclude)
    else:
        result = lint_paths(args.paths, config=config, exclude=exclude)
    if args.write_baseline:
        if args.baseline is None:
            raise ValueError("--write-baseline requires --baseline PATH")
        count = write_baseline(result.findings, args.baseline)
        print(f"baseline: {count} finding(s) written to {args.baseline}")
        return 0
    if args.baseline is not None:
        apply_baseline(result, load_baseline(args.baseline))
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return result.exit_code()


def _cmd_build(args: argparse.Namespace) -> int:
    graph, certificate = build_lhg(args.n, args.k, rule=args.rule)
    if args.json:
        print(to_json(graph))
        return 0
    print(f"built {graph.name} via rule {certificate.rule!r}")
    print(
        f"  nodes={graph.number_of_nodes()} edges={graph.number_of_edges()} "
        f"height={certificate.height()}"
    )
    degrees = sorted(set(graph.degrees().values()))
    print(f"  degrees={degrees} regular={'yes' if len(degrees) == 1 else 'no'}")
    if args.explain:
        from repro.core.existence import explain_construction

        for step in explain_construction(args.n, args.k, rule=args.rule):
            print(f"  - {step}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    graph, _ = build_lhg(args.n, args.k, rule=args.rule)
    report = check_lhg(graph, args.k)
    print(report.summary())
    return 0 if report.is_lhg else 1


def _cmd_flood(args: argparse.Namespace) -> int:
    graph, _ = build_lhg(args.n, args.k, rule=args.rule)
    source = graph.nodes()[0]
    schedule = None
    if args.crashes:
        schedule = random_crashes(
            graph, args.crashes, seed=args.seed, protect={source}
        )
    result = run_flood(graph, source, failures=schedule)
    print(
        f"flood on {graph.name}: covered {result.covered}/{result.reachable} "
        f"reachable ({result.delivery_ratio:.2%}), {result.messages} messages, "
        f"completed at t={result.completion_time}"
    )
    return 0 if result.fully_covered else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.exec import TopologySpec, build_lhg_cached
    from repro.robustness import (
        ChaosCampaign,
        round_flood_protocol,
        standard_scenarios,
    )

    scenarios = standard_scenarios(loss_rates=tuple(args.loss))
    if args.scale:
        # oracle-backed spec + the rounds engine: no materialization, so
        # the same grid runs at sizes the event simulator cannot price.
        # dup-reorder needs the event simulator's channel model; the
        # rounds engine refuses it, so drop it from the default grid.
        scenarios = [s for s in scenarios if s.name != "dup-reorder"]
        spec = TopologySpec(args.n, args.k, backend="implicit")
        topologies = [(spec.label, spec)]
        protocols = [round_flood_protocol()]
        title_name, title_rule = spec.label, "implicit-jd"
    else:
        graph, certificate = build_lhg_cached(args.n, args.k, rule=args.rule)
        topologies = [(graph.name, graph)]
        protocols = None
        title_name, title_rule = graph.name, certificate.rule
    if args.scenarios:
        wanted = set(args.scenarios)
        unknown = wanted - {s.name for s in scenarios}
        if unknown:
            known = ", ".join(s.name for s in scenarios)
            print(
                f"error: unknown scenario(s) {sorted(unknown)}; known: {known}",
                file=sys.stderr,
            )
            return 2
        scenarios = [s for s in scenarios if s.name in wanted]
    campaign = ChaosCampaign(
        topologies,
        protocols=protocols,
        scenarios=scenarios,
        seeds=range(args.seed, args.seed + args.repeats),
    )
    matrix = campaign.run(
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(
        matrix.render(
            title=(
                f"Chaos campaign on {title_name} ({title_rule}), "
                f"{args.repeats} seed(s)"
            )
        )
    )
    green = matrix.all_green
    status = "all green" if green else f"VIOLATED in {len(matrix.violations)} case(s)"
    if matrix.failures:
        status += f", {len(matrix.failures)} cell(s) failed to execute"
    print(f"{len(matrix.cells)} cells, invariants {status}")
    print(campaign.last_report.summary())
    return 0 if green else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.service import SoakConfig, run_soak

    bursts = []
    for spec in args.burst or []:
        tick_str, sep, size_str = spec.partition(":")
        if not sep or not tick_str.lstrip("-").isdigit() or not size_str.lstrip("-").isdigit():
            raise ValueError(f"--burst expects TICK:SIZE (integers), got {spec!r}")
        bursts.append((int(tick_str), int(size_str)))
    config = SoakConfig(
        population=args.n,
        k=args.k,
        rule=args.rule,
        duration=args.duration,
        churn_rate=args.churn_rate,
        flood_rate=args.flood_rate,
        zipf_exponent=args.zipf,
        flood_budget=args.flood_budget,
        verify_every=args.verify_every,
        repair_edge_budget=args.repair_budget,
        bursts=tuple(bursts),
        seed=args.seed,
        max_wall=args.max_wall,
    )
    metrics_stream = None
    if args.openmetrics and not args.metrics:
        raise ValueError("--openmetrics requires --metrics PATH")
    if args.metrics:
        from repro.obs import MetricsStream

        metrics_stream = MetricsStream(
            args.metrics, openmetrics_path=args.openmetrics
        )
    try:
        report = run_soak(
            config,
            checkpoint=args.checkpoint,
            resume=args.resume,
            metrics=metrics_stream,
            metrics_every=args.metrics_every,
        )
    finally:
        if metrics_stream is not None:
            metrics_stream.close()
            print(
                f"metrics: {metrics_stream.exports} snapshot(s) streamed "
                f"to {args.metrics}",
                file=sys.stderr,
            )
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())
    problems = report.violations(p99_hops=args.slo_p99)
    for problem in problems:
        print(f"SLO violation: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_prof(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs.prof import SamplingProfiler

    graph, _ = build_lhg(args.n, args.k, rule=args.rule)
    source = graph.nodes()[0]
    # Spans need a collector; borrow the telemetry one when installed.
    own = obs.active() is None
    if own:
        obs.install(obs.Collector())
    profiler = SamplingProfiler(
        hz=args.hz, backend=args.backend, timer=args.timer
    )
    try:
        with profiler:
            for _ in range(args.repeat):
                with obs.span("flood", n=args.n, k=args.k):
                    run_flood(graph, source)
    finally:
        if own:
            obs.uninstall()
    profile = profiler.profile
    print(profile.render(limit=args.top))
    if args.output is not None:
        lines = profile.write_collapsed(args.output)
        print(f"profile: {lines} collapsed stack(s) written to {args.output}")
    if profile.sample_count == 0:
        print(
            "error: no samples landed — run longer (--repeat) or raise --hz",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_ABS_FLOOR,
        DEFAULT_REL_FLOOR,
        DEFAULT_SIGMAS,
        build_ledger,
        collect_results,
        diff_results,
        has_regression,
        load_ledger,
        render_deltas,
        write_ledger,
    )

    if args.action == "record":
        ledger = build_ledger(collect_results(args.results))
        write_ledger(args.ledger, ledger)
        metric_count = sum(len(m) for m in ledger["entries"].values())
        print(
            f"perf: recorded {len(ledger['entries'])} experiment(s), "
            f"{metric_count} metric(s) to {args.ledger}"
        )
        return 0
    deltas = diff_results(
        collect_results(args.results),
        load_ledger(args.ledger),
        rel_floor=(
            DEFAULT_REL_FLOOR if args.rel_floor is None else args.rel_floor
        ),
        abs_floor=(
            DEFAULT_ABS_FLOOR if args.abs_floor is None else args.abs_floor
        ),
        sigmas=DEFAULT_SIGMAS if args.sigmas is None else args.sigmas,
    )
    print(render_deltas(deltas))
    if args.action == "check" and has_regression(deltas):
        print("perf: REGRESSION beyond tolerance band", file=sys.stderr)
        return 1
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    rows = coverage_table(args.k, args.max_n)
    print(
        render_table(
            ["n", "jenkins-demers", "k-tree", "k-diamond"],
            rows,
            title=f"Construction coverage for k={args.k}",
        )
    )
    return 0


def _cmd_diameter(args: argparse.Namespace) -> int:
    from repro.analysis.sweep import run_sweep

    sizes = []
    n = 2 * args.k
    while n <= args.max_n:
        sizes.append(n)
        n *= 2

    def measure(n: int) -> dict:
        lhg, _ = build_lhg(n, args.k)
        return {
            "harary-diameter": diameter(harary_graph(args.k, n)),
            "lhg-diameter": diameter(lhg),
        }

    sweep = run_sweep(
        {"n": sizes},
        measure,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
        timeout=args.timeout,
        retries=args.retries,
    )
    print(
        render_table(
            ["n", "harary-diameter", "lhg-diameter"],
            sweep.rows(["n", "harary-diameter", "lhg-diameter"]),
            title=f"Diameter comparison for k={args.k}",
        )
    )
    return 0


def _cmd_paths(args: argparse.Namespace) -> int:
    from repro.core.routing import menger_witness, tree_route

    graph, certificate = build_lhg(args.n, args.k, rule=args.rule)
    nodes = graph.nodes()
    source, target = nodes[0], nodes[-1]
    print(f"{args.k} node-disjoint paths {source!r} -> {target!r}:")
    for path in menger_witness(graph, certificate, source, target):
        print("  " + " -> ".join(repr(p) for p in path))
    route = tree_route(certificate, source, target)
    print(f"certificate route ({len(route) - 1} hops):")
    print("  " + " -> ".join(repr(p) for p in route))
    return 0


def _cmd_spectral(args: argparse.Namespace) -> int:
    from repro.analysis.spectral import algebraic_connectivity

    graph, certificate = build_lhg(args.n, args.k, rule=args.rule)
    harary = harary_graph(args.k, args.n)
    lhg_l2 = algebraic_connectivity(graph)
    harary_l2 = algebraic_connectivity(harary)
    print(f"algebraic connectivity at (n={args.n}, k={args.k}):")
    print(f"  lhg ({certificate.rule}): {lhg_l2:.4f}")
    print(f"  harary circulant        : {harary_l2:.4f}")
    print(f"  ratio                   : {lhg_l2 / harary_l2:.2f}x")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.planning import plan_topology

    plan = plan_topology(
        args.n, args.failures, latency_budget_hops=args.latency_budget
    )
    print(plan.summary())
    if plan.paper_rule_applies:
        print("the original Jenkins-Demers rule covers this pair")
    else:
        print("built via an extension rule (the JD rule has a gap here)")
    return 0


def _peak_rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def _cmd_scale(args: argparse.Namespace) -> int:
    import json as _json

    from repro.graphs.csr import CSRGraph
    from repro.graphs.implicit import ImplicitJDOracle

    oracle = ImplicitJDOracle(args.n, args.k)
    proofs = oracle.structural_proofs()
    report = {
        "n": args.n,
        "k": args.k,
        "rule": oracle.rule,
        "edges": oracle.number_of_edges(),
        "height": oracle.height(),
        "properties": {
            w.property_id: {"holds": w.holds, "conclusive": w.conclusive}
            for w in proofs.witnesses
        },
    }
    if args.csr or args.flood:
        csr = CSRGraph.from_oracle(oracle, name=oracle.name)
        report["csr_bytes"] = csr.nbytes()
    if args.flood:
        from repro.flooding.rounds import round_flood

        flood = round_flood(csr, 0)
        report["flood"] = {
            "covered": flood.covered,
            "messages": flood.messages,
            "rounds": flood.rounds,
        }
    attacks_green = True
    if args.attack:
        from repro.flooding.failures import survivors
        from repro.flooding.rounds import round_flood
        from repro.robustness.attacks import targeted_cut_attacks
        from repro.robustness.invariants import recertify_survivors

        attacks = []
        for plan in targeted_cut_attacks(oracle):
            schedule = plan.schedule()
            source = plan.surviving_source(oracle)
            flood = round_flood(oracle, source, schedule=schedule)
            view = survivors(oracle, schedule)
            violations = [str(v) for v in recertify_survivors(view, args.k)]
            certified = flood.fully_covered and not violations
            attacks_green = attacks_green and certified
            attacks.append(
                {
                    "attack": plan.name,
                    "damage": plan.damage,
                    "alive": flood.alive,
                    "covered": flood.covered,
                    "reachable": flood.reachable,
                    "rounds": flood.rounds,
                    "messages": flood.messages,
                    "violations": violations,
                }
            )
        report["attacks"] = attacks
    report["peak_rss_bytes"] = _peak_rss_bytes()
    if args.json:
        print(_json.dumps(report, sort_keys=False))
    else:
        print(f"{oracle.name}: {args.n} nodes, {report['edges']} edges, "
              f"height {report['height']}")
        print(f"  certificates: {proofs.summary()}")
        if "csr_bytes" in report:
            print(f"  CSR size: {report['csr_bytes'] / 1e6:.1f} MB")
        if "flood" in report:
            f = report["flood"]
            print(
                f"  flood from node 0: covered {f['covered']}/{args.n} in "
                f"{f['rounds']} rounds, {f['messages']} messages"
            )
        for row in report.get("attacks", []):
            verdict = (
                "certified"
                if row["covered"] >= row["reachable"] and not row["violations"]
                else "VIOLATED " + "; ".join(row["violations"])
            )
            print(
                f"  attack {row['attack']}: damage {row['damage']}, "
                f"covered {row['covered']}/{row['alive']} survivors in "
                f"{row['rounds']} rounds — {verdict}"
            )
        print(f"  peak RSS: {report['peak_rss_bytes'] / 1e6:.1f} MB")
    return 0 if proofs.all_hold and proofs.conclusive and attacks_green else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lhg",
        description="Logarithmic Harary Graphs: build, verify, and flood.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_pair(p: argparse.ArgumentParser) -> None:
        p.add_argument("n", type=int, help="number of nodes")
        p.add_argument("k", type=int, help="connectivity level")
        p.add_argument(
            "--rule",
            default="auto",
            choices=["auto", "jenkins-demers", "k-tree", "k-diamond"],
            help="construction rule (default: auto)",
        )

    def add_telemetry(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--telemetry",
            default=None,
            metavar="PATH",
            help="write the run's JSONL telemetry event log to PATH "
            "(inspect with 'repro trace summary PATH')",
        )
        p.add_argument(
            "--log-json",
            action="store_true",
            help="stream telemetry events to stderr as JSON lines",
        )

    def add_fault_tolerance(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-cell wall-clock budget; a cell exceeding it is "
            "killed and retried (default: no timeout)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            metavar="N",
            help="retry a failed/timed-out cell up to N times with "
            "deterministic backoff (default: 2 when supervision is on)",
        )
        p.add_argument(
            "--checkpoint",
            default=None,
            metavar="PATH",
            help="journal completed cells to this JSONL file so an "
            "interrupted run can be resumed with --resume",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help="skip cells already recorded in the --checkpoint journal",
        )

    p_build = sub.add_parser("build", help="construct an LHG and summarise it")
    add_pair(p_build)
    p_build.add_argument("--json", action="store_true", help="emit JSON edge list")
    p_build.add_argument(
        "--explain", action="store_true", help="narrate the construction steps"
    )
    add_telemetry(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_check = sub.add_parser("check", help="verify LHG properties 1-5")
    add_pair(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_flood = sub.add_parser("flood", help="simulate a flood")
    add_pair(p_flood)
    p_flood.add_argument("--crashes", type=int, default=0, help="random crashes")
    p_flood.add_argument("--seed", type=int, default=0, help="failure seed")
    add_telemetry(p_flood)
    p_flood.set_defaults(func=_cmd_flood)

    p_chaos = sub.add_parser(
        "chaos", help="chaos campaign: resilience matrix + invariant checks"
    )
    add_pair(p_chaos)
    p_chaos.add_argument(
        "--scenarios",
        nargs="*",
        metavar="NAME",
        help="restrict to these scenario names (default: all)",
    )
    p_chaos.add_argument(
        "--loss",
        type=float,
        nargs="*",
        default=[0.1, 0.3],
        help="loss rates for the loss-p scenarios (default: 0.1 0.3)",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="base seed")
    p_chaos.add_argument(
        "--repeats", type=int, default=1, help="grid passes (seeds seed..seed+r-1)"
    )
    p_chaos.add_argument(
        "--scale",
        action="store_true",
        help="oracle-backed topology + synchronous-round flooding: no "
        "materialization, so the grid runs at million-node sizes "
        "(drops the dup-reorder scenario, which needs the event engine)",
    )
    p_chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the grid (default: serial; -1 = all cores)",
    )
    add_fault_tolerance(p_chaos)
    add_telemetry(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_soak = sub.add_parser(
        "soak",
        help="run the overlay as a long-lived service with SLO tracking",
        description=(
            "Run the LHG overlay as a steady-state service on a "
            "virtual-time tick loop: Zipf-source Poisson broadcast "
            "workload, Poisson membership churn, online repair with "
            "graceful degradation, and invariant re-verification on a "
            "cadence. Exit codes: 0 SLOs met, 1 SLO violated (the run "
            "ended degraded, an invariant check failed, or p99 latency "
            "exceeded --slo-p99), 2 usage or configuration error."
        ),
    )
    add_pair(p_soak)
    p_soak.add_argument(
        "--duration",
        type=int,
        default=120,
        metavar="TICKS",
        help="soak length in virtual ticks (default: 120)",
    )
    p_soak.add_argument(
        "--churn-rate",
        type=float,
        default=0.4,
        metavar="RATE",
        help="Poisson mean membership events per tick (default: 0.4)",
    )
    p_soak.add_argument(
        "--flood-rate",
        type=float,
        default=2.0,
        metavar="RATE",
        help="Poisson mean new floods per tick (default: 2.0)",
    )
    p_soak.add_argument(
        "--zipf",
        type=float,
        default=1.1,
        metavar="S",
        help="Zipf exponent for flood-source popularity (default: 1.1)",
    )
    p_soak.add_argument(
        "--flood-budget",
        type=int,
        default=48,
        metavar="N",
        help="in-flight flood cap before admission control sheds "
        "arrivals; halved while degraded (default: 48)",
    )
    p_soak.add_argument(
        "--verify-every",
        type=int,
        default=20,
        metavar="TICKS",
        help="invariant-check cadence for Properties 1-4 (default: 20)",
    )
    p_soak.add_argument(
        "--repair-budget",
        type=int,
        default=24,
        metavar="EDGES",
        help="edge operations a repair may perform per tick (default: 24)",
    )
    p_soak.add_argument(
        "--burst",
        action="append",
        metavar="TICK:SIZE",
        help="force a crash burst of SIZE members at TICK (repeatable); "
        "a burst beyond k-1 drives the service DEGRADED",
    )
    p_soak.add_argument("--seed", type=int, default=0, help="base seed")
    p_soak.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="HOPS",
        help="fail (exit 1) when p99 flood latency exceeds this many hops",
    )
    p_soak.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock safety valve: stop cleanly (report marked "
        "truncated) after this many seconds (default: unlimited)",
    )
    p_soak.add_argument(
        "--json",
        action="store_true",
        help="emit the full SLO report as deterministic JSON",
    )
    p_soak.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="journal completed ticks to this JSONL file so a killed "
        "soak can be resumed with --resume (byte-identical report)",
    )
    p_soak.add_argument(
        "--resume",
        action="store_true",
        help="replay ticks already recorded in the --checkpoint journal",
    )
    p_soak.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="stream live metrics snapshots (SLO histograms, burn "
        "rates, alert gauges) to this JSONL file while the soak runs",
    )
    p_soak.add_argument(
        "--openmetrics",
        default=None,
        metavar="PATH",
        help="also keep an OpenMetrics text rendering of the latest "
        "snapshot at PATH, atomically rewritten each export "
        "(requires --metrics)",
    )
    p_soak.add_argument(
        "--metrics-every",
        type=int,
        default=10,
        metavar="TICKS",
        help="export cadence in ticks for --metrics (default: 10)",
    )
    add_telemetry(p_soak)
    p_soak.set_defaults(func=_cmd_soak)

    p_cov = sub.add_parser("coverage", help="per-rule existence table")
    p_cov.add_argument("k", type=int)
    p_cov.add_argument("--max-n", type=int, default=60)
    p_cov.set_defaults(func=_cmd_coverage)

    p_diam = sub.add_parser("diameter", help="Harary vs LHG diameter sweep")
    p_diam.add_argument("k", type=int)
    p_diam.add_argument("--max-n", type=int, default=512)
    p_diam.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sweep (default: serial; -1 = all cores)",
    )
    add_fault_tolerance(p_diam)
    add_telemetry(p_diam)
    p_diam.set_defaults(func=_cmd_diameter)

    p_paths = sub.add_parser("paths", help="show Menger disjoint paths")
    add_pair(p_paths)
    p_paths.set_defaults(func=_cmd_paths)

    p_spec = sub.add_parser("spectral", help="algebraic connectivity vs Harary")
    add_pair(p_spec)
    p_spec.set_defaults(func=_cmd_spectral)

    p_plan = sub.add_parser("plan", help="plan a deployment for n members")
    p_plan.add_argument("n", type=int, help="number of members")
    p_plan.add_argument("failures", type=int, help="crashes to survive")
    p_plan.add_argument(
        "--latency-budget", type=int, default=None, help="max hops allowed"
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_scale = sub.add_parser(
        "scale",
        help="million-node build + certificate verification (implicit oracle)",
    )
    p_scale.add_argument("n", type=int, help="number of nodes")
    p_scale.add_argument("k", type=int, help="connectivity level")
    p_scale.add_argument(
        "--csr",
        action="store_true",
        help="also compile the oracle to a CSR adjacency and report its size",
    )
    p_scale.add_argument(
        "--flood",
        action="store_true",
        help="also flood from node 0 in synchronous rounds (implies --csr)",
    )
    p_scale.add_argument(
        "--attack",
        action="store_true",
        help="replay every targeted k-1 cut attack (derived from the JD "
        "pasting arithmetic), flood the survivors and recertify the "
        "damaged topology; exit 1 unless every attack is certified",
    )
    p_scale.add_argument("--json", action="store_true", help="emit a JSON report")
    p_scale.set_defaults(func=_cmd_scale)

    p_prof = sub.add_parser(
        "prof",
        help="profile the flooding simulator (span-attributed sampling)",
        description=(
            "Run repeated floods on the (n, k) LHG under the sampling "
            "profiler and print the hot frames with per-span "
            "attribution. The collapsed-stack output (-o) loads in "
            "speedscope or flamegraph.pl. Exit codes: 0 samples "
            "collected, 1 none landed, 2 usage errors."
        ),
    )
    add_pair(p_prof)
    p_prof.add_argument(
        "--hz",
        type=float,
        default=100.0,
        help="target sampling rate in samples/second (default: 100)",
    )
    p_prof.add_argument(
        "--timer",
        choices=["wall", "cpu"],
        default="wall",
        help="sample on wall or CPU time (signal backend only; "
        "default: wall)",
    )
    p_prof.add_argument(
        "--backend",
        choices=["auto", "signal", "setprofile"],
        default="auto",
        help="sampling backend (default: auto — signal where available)",
    )
    p_prof.add_argument(
        "--repeat",
        type=int,
        default=20,
        metavar="N",
        help="floods to run under the profiler (default: 20)",
    )
    p_prof.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="hot functions to print (default: 10)",
    )
    p_prof.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write collapsed stacks to PATH (speedscope/flamegraph.pl)",
    )
    p_prof.set_defaults(func=_cmd_prof)

    p_perf = sub.add_parser(
        "perf",
        help="benchmark ledger: record / diff / check regressions",
        description=(
            "Compare BENCH_*.json results (shared repro.perf schema) "
            "against the committed baseline ledger. 'record' adopts the "
            "current results as the baseline; 'diff' renders the "
            "comparison; 'check' exits 1 when any metric regressed "
            "beyond its noise-aware tolerance band. Wall-clock metrics "
            "gate only when the host fingerprint matches the ledger's."
        ),
    )
    p_perf.add_argument(
        "action",
        choices=["record", "diff", "check"],
        help="record: write the baseline; diff: compare; check: gate",
    )
    p_perf.add_argument(
        "--results",
        default="benchmarks/results",
        metavar="DIR",
        help="directory of BENCH_*.json files (default: benchmarks/results)",
    )
    p_perf.add_argument(
        "--ledger",
        default="benchmarks/perf-baseline.json",
        metavar="PATH",
        help="baseline ledger path (default: benchmarks/perf-baseline.json)",
    )
    p_perf.add_argument(
        "--rel-floor",
        type=float,
        default=None,
        metavar="FRAC",
        help="minimum relative band for wall-clock metrics "
        "(default: 0.35)",
    )
    p_perf.add_argument(
        "--abs-floor",
        type=float,
        default=None,
        metavar="DELTA",
        help="minimum absolute band for unitless metrics (default: 0.05)",
    )
    p_perf.add_argument(
        "--sigmas",
        type=float,
        default=None,
        metavar="N",
        help="band width in combined measured dispersions (default: 3)",
    )
    p_perf.set_defaults(func=_cmd_perf)

    p_trace = sub.add_parser(
        "trace", help="inspect or convert a --telemetry JSONL log"
    )
    p_trace.add_argument(
        "action",
        choices=["summary", "chrome"],
        help="summary: human digest; chrome: Chrome trace_event JSON "
        "(loads in Perfetto)",
    )
    p_trace.add_argument("file", help="JSONL telemetry log to read")
    p_trace.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="output path for 'chrome' (default: FILE.trace.json)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_lint = sub.add_parser(
        "lint",
        help="static determinism & fork-safety analysis (AST rules)",
        description=(
            "Run the repro.lint rule set (DET001-3, FORK001-2, EXC001, "
            "API001) over the given files/directories. With --project, "
            "additionally build the whole-program model (import graph, "
            "call graph) and run the cross-module rule families "
            "(SEED001-3 seed-provenance taint, ORACLE001-3 protocol "
            "conformance, API002-4 export drift, PROJ001 import "
            "cycles). Exit codes: 0 clean, 1 findings, 2 usage or "
            "internal error."
        ),
    )
    p_lint.add_argument(
        "paths", nargs="+", help="files or directories to analyse"
    )
    p_lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text; sarif emits SARIF 2.1.0 "
        "for CI annotation)",
    )
    p_lint.add_argument(
        "--project",
        action="store_true",
        help="whole-program analysis: project model + interprocedural "
        "seed taint + oracle/API conformance on top of the per-file "
        "rules",
    )
    p_lint.add_argument(
        "--graph",
        choices=["dot", "json"],
        default=None,
        metavar="FMT",
        help="dump the import/call graph (dot or json) instead of "
        "linting",
    )
    p_lint.add_argument(
        "--exclude",
        nargs="*",
        metavar="SUBSTR",
        help="skip files whose path contains any of these substrings "
        "(e.g. lint_fixtures)",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings to subtract "
        "(e.g. lint-baseline.json)",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0 "
        "(grandfathers everything currently firing)",
    )
    p_lint.add_argument(
        "--select",
        nargs="*",
        metavar="RULE",
        help="restrict to these rule ids (default: all rules)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _telemetry(args):
            return args.func(args)
    except (ReproError, ValueError, OSError) as exc:
        # ValueError covers argument validation below argparse's reach:
        # workers counts, --resume without --checkpoint, journal refusal;
        # OSError covers unreadable/unwritable telemetry and trace files
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
