"""Topology planning: turn operational requirements into an (n, k) choice.

The paper's knobs are n (given by the membership) and k (chosen).  This
module packages the arithmetic an operator needs:

* how large must k be to survive f failures?  (k = f + 1)
* what diameter / flood latency / message bill does that k imply at n?
* is a k-regular (minimum-edge) LHG available at this exact n, and if
  not, what are the nearest sizes that have one?

:func:`plan_topology` answers all of it in one call and raises typed
errors when the requirements are unsatisfiable (e.g. more failures than
members).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConstructionError
from repro.core.existence import build_lhg, regular_exists
from repro.core.jenkins_demers import is_jd_constructible
from repro.core.properties import theoretical_diameter_bound


@dataclass(frozen=True)
class TopologyPlan:
    """The planner's answer for one (n, failures) requirement.

    ``expected_diameter`` is exact (measured on the built graph);
    ``latency_bound`` is the certificate's worst-case guarantee.
    """

    n: int
    k: int
    rule: str
    edges: int
    expected_diameter: int
    latency_bound: int
    k_regular: bool
    nearest_regular_sizes: Tuple[int, ...]
    paper_rule_applies: bool

    @property
    def message_cost_per_broadcast(self) -> int:
        """Messages one failure-free flood will send (exactly 2m − (n−1))."""
        return 2 * self.edges - (self.n - 1)

    def summary(self) -> str:
        """Human-readable one-paragraph plan."""
        regular = "k-regular (minimum edges)" if self.k_regular else (
            f"not k-regular here; nearest regular sizes "
            f"{self.nearest_regular_sizes}"
        )
        return (
            f"n={self.n}, k={self.k} via {self.rule}: {self.edges} links, "
            f"diameter {self.expected_diameter} (guaranteed ≤ "
            f"{self.latency_bound}), {self.message_cost_per_broadcast} "
            f"messages/broadcast, {regular}"
        )


def required_k(failures_tolerated: int) -> int:
    """Connectivity needed to survive the given number of crashes.

    Raises
    ------
    ConstructionError
        If ``failures_tolerated < 1`` (use a plain tree) — the LHG
        machinery needs k ≥ 2.
    """
    if failures_tolerated < 1:
        raise ConstructionError(
            "for zero fault tolerance use a spanning tree; LHGs need k >= 2"
        )
    return failures_tolerated + 1


def nearest_regular_sizes(n: int, k: int, count: int = 2) -> List[int]:
    """The ``count`` sizes closest to ``n`` with a k-regular LHG."""
    candidates: List[Tuple[int, int]] = []
    for candidate in range(2 * k, max(n * 2, 4 * k) + k):
        if regular_exists(candidate, k, "k-diamond"):
            candidates.append((abs(candidate - n), candidate))
    candidates.sort()
    return sorted(size for _, size in candidates[:count])


def plan_topology(
    n: int,
    failures_tolerated: int,
    latency_budget_hops: Optional[int] = None,
) -> TopologyPlan:
    """Plan an LHG deployment for ``n`` members surviving ``f`` crashes.

    Parameters
    ----------
    latency_budget_hops:
        Optional hard cap on the worst-case flood depth; the planner
        raises if no LHG at this (n, k) can honour it.

    Raises
    ------
    ConstructionError
        If the requirement is unsatisfiable: k ≥ n (too few members for
        the fault tolerance), n < 2k (below the construction minimum),
        or the latency budget is tighter than the guaranteed bound.
    """
    k = required_k(failures_tolerated)
    if n <= k:
        raise ConstructionError(
            f"surviving {failures_tolerated} crashes needs k={k} < n; "
            f"got n={n} members"
        )
    if n < 2 * k:
        raise ConstructionError(
            f"the constructions need n >= 2k = {2 * k}; with n={n} use a "
            f"complete graph (it is {n - 1}-connected) until membership grows"
        )
    graph, certificate = build_lhg(n, k)
    from repro.graphs.traversal import diameter

    measured = diameter(graph)
    bound = theoretical_diameter_bound(certificate)
    if latency_budget_hops is not None and bound > latency_budget_hops:
        raise ConstructionError(
            f"cannot guarantee ≤ {latency_budget_hops} hops at (n={n}, "
            f"k={k}): the construction's bound is {bound} "
            f"(measured {measured}); lower n, raise the budget, or raise k"
        )
    regular = graph.regular_degree() == k
    return TopologyPlan(
        n=n,
        k=k,
        rule=certificate.rule,
        edges=graph.number_of_edges(),
        expected_diameter=measured,
        latency_bound=bound,
        k_regular=regular,
        nearest_regular_sizes=tuple(nearest_regular_sizes(n, k)),
        paper_rule_applies=is_jd_constructible(n, k),
    )
