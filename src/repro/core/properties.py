"""The LHG property bundle — Properties 1–5 of the paper's definition.

A graph G on n nodes is a **Logarithmic Harary Graph** for (n, k) iff

* **P1 k-node connectivity** — removing any ≤ k−1 nodes leaves G
  connected;
* **P2 k-link connectivity** — removing any ≤ k−1 links leaves G
  connected;
* **P3 link minimality** — removing any single link reduces the
  link/node connectivity;
* **P4 logarithmic diameter** — the max shortest-path length is
  O(log n).

Property 5, **k-regularity**, marks the LHGs with the fewest edges
possible for the connectivity level.

:func:`check_lhg` evaluates the bundle and returns an
:class:`LHGReport`; :func:`is_lhg` is the boolean shortcut.  P4 is an
asymptotic statement, so the checker tests the diameter against the
generous-but-honest budget of
:func:`repro.graphs.properties.logarithmic_diameter_bound`; benches and
tests additionally pin the *exact* diameters of the constructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.connectivity import is_k_edge_connected, is_k_node_connected
from repro.graphs.minimality import (
    has_degree_witness_minimality,
    is_link_minimal,
)
from repro.graphs.properties import is_k_regular, logarithmic_diameter_bound
from repro.graphs.traversal import approximate_diameter, diameter, is_connected


@dataclass(frozen=True)
class LHGReport:
    """Outcome of an LHG property check.

    ``diameter`` is exact when computed exhaustively, otherwise the
    double-sweep lower bound (``exact_diameter`` says which).
    """

    n: int
    k: int
    node_connected: bool
    link_connected: bool
    link_minimal: bool
    log_diameter: bool
    k_regular: bool
    diameter: int
    diameter_budget: int
    exact_diameter: bool

    @property
    def is_lhg(self) -> bool:
        """True when Properties 1–4 all hold."""
        return (
            self.node_connected
            and self.link_connected
            and self.link_minimal
            and self.log_diameter
        )

    def summary(self) -> str:
        """One-line human-readable verdict."""
        flags = [
            ("P1-kappa", self.node_connected),
            ("P2-lambda", self.link_connected),
            ("P3-minimal", self.link_minimal),
            ("P4-logdiam", self.log_diameter),
            ("P5-regular", self.k_regular),
        ]
        status = " ".join(f"{name}={'ok' if ok else 'FAIL'}" for name, ok in flags)
        return (
            f"LHG(n={self.n}, k={self.k}): {status} "
            f"diameter={self.diameter}{'' if self.exact_diameter else '+'}"
            f"/budget={self.diameter_budget}"
        )


def check_lhg(
    graph: Graph,
    k: int,
    exact_diameter_limit: int = 2000,
    minimality_exact: Optional[bool] = None,
) -> LHGReport:
    """Evaluate Properties 1–5 for ``graph`` at connectivity level ``k``.

    Parameters
    ----------
    exact_diameter_limit:
        Up to this many nodes the diameter is computed exactly (all-BFS);
        beyond it the double-sweep estimate is used, which on these
        constructions is empirically exact and never overshoots.
    minimality_exact:
        Force (``True``) or forbid (``False``) the exhaustive P3 check.
        Default: try the sound degree-witness fast path first and fall
        back to the exhaustive check only for small graphs.

    Raises
    ------
    GraphError
        If ``k < 1`` or the graph is empty.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("cannot check LHG properties of an empty graph")
    if k < 1:
        raise GraphError(f"connectivity level must be >= 1, got k={k}")

    node_conn = is_k_node_connected(graph, k)
    link_conn = is_k_edge_connected(graph, k)

    if minimality_exact is None:
        minimal = has_degree_witness_minimality(graph, k)
        if not minimal and n <= 400:
            minimal = is_link_minimal(graph, k)
    elif minimality_exact:
        minimal = is_link_minimal(graph, k)
    else:
        minimal = has_degree_witness_minimality(graph, k)

    if is_connected(graph):
        if n <= exact_diameter_limit:
            diam = diameter(graph)
            exact = True
        else:
            diam = approximate_diameter(graph)
            exact = False
    else:
        diam = n  # infinite, represented as the vacuous worst case
        exact = True

    budget = logarithmic_diameter_bound(n, k) if n >= 2 else 0
    log_diam = is_connected(graph) and diam <= budget

    return LHGReport(
        n=n,
        k=k,
        node_connected=node_conn,
        link_connected=link_conn,
        link_minimal=minimal,
        log_diameter=log_diam,
        k_regular=is_k_regular(graph, k),
        diameter=diam,
        diameter_budget=budget,
        exact_diameter=exact,
    )


def is_lhg(graph: Graph, k: int) -> bool:
    """Return ``True`` iff ``graph`` satisfies LHG Properties 1–4 for ``k``."""
    return check_lhg(graph, k).is_lhg


def theoretical_diameter_bound(certificate) -> int:
    """The construction-specific diameter bound a certificate implies.

    Any two graph nodes connect through at most two root-to-leaf tree
    walks plus a constant number of splice hops (one clique hop for
    unshared slots), so

        diameter ≤ 2·(height + 1) + 1.

    Tests assert the real diameter never exceeds this; with height =
    O(log_{k−1} n) for k ≥ 3 this is the paper's Property 4.
    """
    return 2 * (certificate.height() + 1) + 1
