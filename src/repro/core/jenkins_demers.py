"""The Jenkins–Demers LHG construction (the target paper's contribution).

The paper's operational rule, quoted verbatim by the follow-on
literature:

    "The construction consists of k copies of a tree whose root node has
    k children, and whose other interior nodes mostly have k−1 children
    (except for at most k interior nodes just above the leaf nodes,
    which may have up to k+1 children).  These trees are then 'pasted
    together' at the leaves — i.e. each leaf is a leaf of all k trees."

Mapped onto the :class:`~repro.core.tree_schema.TreeSchema` engine:

* base tree: root + k shared leaves → n = 2k (the K_{k,k} LHG);
* growth: converting a leaf into an interior (with its k−1 fresh leaves)
  adds 2(k−1) nodes, so the "clean" sizes are n₀ = 2k + 2α(k−1);
* slack: a **non-root** interior just above the leaves may carry up to
  k+1 children, i.e. up to **two** added leaves; at most **k** interiors
  may do so.  Added leaves therefore come in even batches bounded by
  2·min(k, eligible interiors).

That slack is exactly why the rule has gaps: odd offsets from n₀ are
never reachable, and near the base (where no non-root interior exists
yet) even small even offsets are unreachable.  :func:`jd_feasibility`
decides any pair exactly, and the coverage benchmark (T4) charts the
resulting holes — infinitely many (n, k) pairs, as the follow-on work
observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import InfeasiblePairError
from repro.core.tree_schema import TreeSchema, grown_schema, paste_copies

RULE_NAME = "jenkins-demers"


@dataclass(frozen=True)
class JDPlan:
    """A feasible Jenkins–Demers build plan for a pair (n, k).

    Attributes
    ----------
    n, k:
        The target pair.
    conversions:
        Leaf→interior conversions applied to the base tree (α).
    extra_pairs:
        Number of non-root interiors that receive two added leaves each.
    """

    n: int
    k: int
    conversions: int
    extra_pairs: int

    @property
    def base_nodes(self) -> int:
        """Nodes contributed by the clean (no-extras) construction."""
        return 2 * self.k + 2 * self.conversions * (self.k - 1)


def _validate_pair(n: int, k: int) -> None:
    if k < 2:
        raise InfeasiblePairError(
            n, k, RULE_NAME, "the construction needs k >= 2 (k copies pasted)"
        )
    if n <= k:
        raise InfeasiblePairError(
            n, k, RULE_NAME, "k-connectivity requires n > k"
        )


def _eligible_extra_hosts(schema: TreeSchema) -> List[int]:
    """Non-root interiors just above the leaves — the only nodes the JD
    rule allows to exceed k−1 children."""
    return schema.interiors_above_leaves(include_root=False)


def jd_feasibility(n: int, k: int) -> Optional[JDPlan]:
    """Return a build plan for (n, k) under the JD rule, or ``None``.

    Searches the (at most two) candidate conversion counts whose clean
    size n₀ lies within the 2k-wide slack window below ``n``, and checks
    the even-offset and eligible-host constraints against the actual
    tree shape.

    Raises
    ------
    InfeasiblePairError
        Only for pairs outside the domain of *any* k-connected graph
        (k < 2 or n ≤ k); in-domain but unconstructible pairs return
        ``None`` so coverage sweeps stay exception-free.
    """
    _validate_pair(n, k)
    if n < 2 * k:
        return None
    step = 2 * (k - 1)
    max_conversions = (n - 2 * k) // step
    # The slack window is at most 2k wide, so only conversion counts with
    # n0 within [n - 2k, n] can work.
    min_conversions = max(0, (n - 2 * k - 2 * k + step - 1) // step)
    for conversions in range(max_conversions, min_conversions - 1, -1):
        offset = n - (2 * k + conversions * step)
        if offset < 0:
            continue
        if offset % 2 != 0:
            continue
        pairs = offset // 2
        if pairs == 0:
            return JDPlan(n=n, k=k, conversions=conversions, extra_pairs=0)
        if pairs > k:
            continue
        schema = grown_schema(k, conversions)
        if pairs <= len(_eligible_extra_hosts(schema)):
            return JDPlan(n=n, k=k, conversions=conversions, extra_pairs=pairs)
    return None


def is_jd_constructible(n: int, k: int) -> bool:
    """True when the Jenkins–Demers rule can build a graph for (n, k).

    This is the EX function of the target construction; experiment T4
    sweeps it to chart the rule's coverage holes.
    """
    try:
        return jd_feasibility(n, k) is not None
    except InfeasiblePairError:
        return False


def jd_schema(n: int, k: int) -> TreeSchema:
    """Build the abstract tree for (n, k) under the JD rule.

    Raises
    ------
    InfeasiblePairError
        If the rule cannot produce the pair (see :func:`jd_feasibility`).
    """
    plan = jd_feasibility(n, k)
    if plan is None:
        offset = (n - 2 * k) % (2 * (k - 1)) if n >= 2 * k else None
        if n < 2 * k:
            reason = f"minimum size for connectivity k={k} is n=2k={2 * k}"
        elif offset is not None and offset % 2 == 1:
            reason = (
                f"n is an odd offset ({offset}) from the clean size "
                f"2k+2α(k−1); the JD rule adds leaves only in pairs"
            )
        else:
            reason = (
                "not enough non-root interiors just above the leaves to "
                "host the required added-leaf pairs"
            )
        raise InfeasiblePairError(n, k, RULE_NAME, reason)
    schema = grown_schema(k, plan.conversions)
    hosts = _eligible_extra_hosts(schema)
    for host in hosts[: plan.extra_pairs]:
        schema.add_extra_leaf(host)
        schema.add_extra_leaf(host)
    if schema.node_count() != n:
        raise InfeasiblePairError(  # pragma: no cover - arithmetic guard
            n, k, RULE_NAME, f"internal accounting error: {schema.describe()}"
        )
    return schema


def jenkins_demers_graph(n: int, k: int):
    """Build the Jenkins–Demers LHG for (n, k).

    Returns
    -------
    (Graph, ConstructionCertificate)
        A graph satisfying LHG Properties 1–4 (and 5 exactly when
        ``n ≡ 2k (mod 2(k−1))``, the paper's regular points), plus the
        structural certificate.

    Raises
    ------
    InfeasiblePairError
        If the rule has no graph for this pair.  Use
        :func:`repro.core.ktree.ktree_graph` (extension) for full
        n ≥ 2k coverage.

    Examples
    --------
    >>> graph, cert = jenkins_demers_graph(10, 3)
    >>> graph.number_of_nodes(), cert.k
    (10, 3)
    """
    schema = jd_schema(n, k)
    graph, certificate = paste_copies(schema)
    graph.name = f"jenkins_demers({n},{k})"
    return graph, certificate.with_rule(RULE_NAME)


def jd_constructible_sizes(k: int, max_n: int) -> List[int]:
    """All n ≤ max_n the JD rule can build for connectivity ``k``."""
    return [n for n in range(2 * k, max_n + 1) if is_jd_constructible(n, k)]


def jd_gap_sizes(k: int, max_n: int) -> List[int]:
    """All n ≤ max_n with n ≥ 2k the JD rule **cannot** build.

    Non-empty for every k ≥ 3 and growing with ``max_n`` — the follow-on
    paper's observation that the rule misses infinitely many pairs.
    """
    return [n for n in range(2 * k, max_n + 1) if not is_jd_constructible(n, k)]


def jd_regular_sizes(k: int, max_n: int) -> List[int]:
    """All n ≤ max_n where the JD construction is perfectly k-regular.

    Exactly the clean sizes n = 2k + 2α(k−1): added leaves raise their
    host's degree above k, so only extra-free plans are regular.
    """
    sizes = []
    n = 2 * k
    while n <= max_n:
        sizes.append(n)
        n += 2 * (k - 1)
    return sizes


def expected_dimensions(plan: JDPlan) -> Tuple[int, int]:
    """Return (nodes, edges) the plan's pasted graph will have.

    Edges: per copy, one edge per non-root interior; each shared leaf
    contributes k pasting edges.  With ``m = conversions + 1`` interiors
    and ``L`` leaf slots (structural + added):

        edges = k·(m − 1) + k·L
    """
    k = plan.k
    interiors = plan.conversions + 1
    structural_leaves = k + plan.conversions * (k - 2)
    leaves = structural_leaves + 2 * plan.extra_pairs
    return plan.n, k * (interiors - 1) + k * leaves
