"""Construction certificates: the builder's own structural witness.

Every LHG builder in this library returns, next to the graph, a
:class:`ConstructionCertificate` — an immutable snapshot of the abstract
tree it pasted.  Holding the witness means

* the verifier can check *structural* claims (copy counts, leaf sharing,
  degree budget, child quotas) exactly, instead of re-deriving them
  heuristically from the bare graph, and
* the disjoint-path router can produce the k node-disjoint Menger paths
  in O(k · log n) straight from the tree structure, the constructive
  argument behind the paper's connectivity lemma.

The certificate is also the serialisation format for built topologies
(:meth:`to_json` / :meth:`from_json`), so an overlay controller can ship
the structure, not just the edge list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CertificateError
from repro.core import tree_schema as ts


@dataclass(frozen=True)
class InteriorRecord:
    """Frozen snapshot of one abstract-tree interior node."""

    id: int
    parent: Optional[int]
    depth: int
    interior_children: Tuple[int, ...]
    leaf_children: Tuple[int, ...]
    added_leaf_children: Tuple[int, ...]


@dataclass(frozen=True)
class LeafRecord:
    """Frozen snapshot of one leaf slot."""

    id: int
    parent: int
    depth: int
    kind: str
    added: bool


@dataclass(frozen=True)
class ConstructionCertificate:
    """Structural witness of a pasted k-copy LHG construction.

    Attributes
    ----------
    k:
        Connectivity level — also the number of pasted tree copies.
    rule:
        Name of the construction rule that produced the graph
        (``"jenkins-demers"``, ``"k-tree"``, ``"k-diamond"``); set by the
        builder via :meth:`with_rule`.
    interiors / leaves:
        Snapshots of the abstract tree, keyed by id.
    """

    k: int
    rule: str
    interiors: Dict[int, InteriorRecord]
    leaves: Dict[int, LeafRecord]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_schema(cls, schema: ts.TreeSchema, rule: str = "unspecified"):
        """Snapshot a :class:`~repro.core.tree_schema.TreeSchema`."""
        interiors = {
            i.id: InteriorRecord(
                id=i.id,
                parent=i.parent,
                depth=i.depth,
                interior_children=tuple(i.interior_children),
                leaf_children=tuple(i.leaf_children),
                added_leaf_children=tuple(i.added_leaf_children),
            )
            for i in schema.interiors.values()
        }
        leaves = {
            l.id: LeafRecord(
                id=l.id, parent=l.parent, depth=l.depth, kind=l.kind, added=l.added
            )
            for l in schema.leaves.values()
        }
        return cls(k=schema.k, rule=rule, interiors=interiors, leaves=leaves)

    def with_rule(self, rule: str) -> "ConstructionCertificate":
        """Return a copy tagged with the producing rule's name."""
        return ConstructionCertificate(
            k=self.k, rule=rule, interiors=self.interiors, leaves=self.leaves
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def interior_count(self) -> int:
        """Number of interior nodes of the abstract tree."""
        return len(self.interiors)

    @property
    def shared_leaves(self) -> List[LeafRecord]:
        """Leaf slots realised as one pasted node."""
        return [l for l in self.leaves.values() if l.kind == ts.SHARED]

    @property
    def unshared_leaves(self) -> List[LeafRecord]:
        """Leaf slots realised as k-cliques."""
        return [l for l in self.leaves.values() if l.kind == ts.UNSHARED]

    def expected_node_count(self) -> int:
        """Graph nodes the pasted construction must have."""
        return (
            self.k * self.interior_count
            + len(self.shared_leaves)
            + self.k * len(self.unshared_leaves)
        )

    def expected_edge_count(self) -> int:
        """Graph edges the pasted construction must have.

        Per copy: one edge per non-root interior (to its parent); plus
        k edges per shared leaf slot (one per copy); plus, per unshared
        slot, k parent edges and the C(k, 2) clique.
        """
        interior_edges = self.k * (self.interior_count - 1)
        shared_edges = self.k * len(self.shared_leaves)
        unshared = len(self.unshared_leaves)
        unshared_edges = unshared * (self.k + self.k * (self.k - 1) // 2)
        return interior_edges + shared_edges + unshared_edges

    def height(self) -> int:
        """Height of the abstract tree."""
        return max(l.depth for l in self.leaves.values())

    def root_id(self) -> int:
        """Id of the abstract root (the interior with no parent)."""
        for record in self.interiors.values():
            if record.parent is None:
                return record.id
        raise CertificateError("certificate has no root interior")

    def path_to_root(self, interior_id: int) -> List[int]:
        """Interior ids from ``interior_id`` up to and including the root."""
        if interior_id not in self.interiors:
            raise CertificateError(f"unknown interior id {interior_id}")
        path = [interior_id]
        while True:
            parent = self.interiors[path[-1]].parent
            if parent is None:
                return path
            path.append(parent)

    def descendant_leaves(self, interior_id: int) -> List[int]:
        """All leaf-slot ids in the subtree rooted at ``interior_id``.

        Added leaf slots count — they hang off the subtree like any
        other leaf and are valid splice points for routing.
        """
        if interior_id not in self.interiors:
            raise CertificateError(f"unknown interior id {interior_id}")
        result: List[int] = []
        stack = [interior_id]
        while stack:
            node = self.interiors[stack.pop()]
            result.extend(node.leaf_children)
            result.extend(node.added_leaf_children)
            stack.extend(node.interior_children)
        return result

    def interior_path(self, from_id: int, to_id: int) -> List[int]:
        """The unique abstract-tree path between two interiors."""
        up_a = self.path_to_root(from_id)
        up_b = self.path_to_root(to_id)
        set_a = {node: idx for idx, node in enumerate(up_a)}
        for idx_b, node in enumerate(up_b):
            if node in set_a:
                return up_a[: set_a[node] + 1] + list(reversed(up_b[:idx_b]))
        raise CertificateError("interiors share no root — corrupt certificate")

    # ------------------------------------------------------------------
    # Verification against a concrete graph
    # ------------------------------------------------------------------

    def verify_graph(self, graph) -> None:
        """Check that ``graph`` is exactly the pasting of this certificate.

        Raises
        ------
        CertificateError
            Describing the first structural mismatch found.
        """
        if graph.number_of_nodes() != self.expected_node_count():
            raise CertificateError(
                f"node count {graph.number_of_nodes()} != expected "
                f"{self.expected_node_count()}"
            )
        if graph.number_of_edges() != self.expected_edge_count():
            raise CertificateError(
                f"edge count {graph.number_of_edges()} != expected "
                f"{self.expected_edge_count()}"
            )
        for copy in range(self.k):
            for record in self.interiors.values():
                label = ts.interior_label(copy, record.id)
                if not graph.has_node(label):
                    raise CertificateError(f"missing interior node {label}")
                if record.parent is not None:
                    parent_label = ts.interior_label(copy, record.parent)
                    if not graph.has_edge(parent_label, label):
                        raise CertificateError(
                            f"missing tree edge {parent_label} -- {label}"
                        )
        for leaf in self.leaves.values():
            if leaf.kind == ts.SHARED:
                label = ts.shared_leaf_label(leaf.id)
                for copy in range(self.k):
                    parent_label = ts.interior_label(copy, leaf.parent)
                    if not graph.has_edge(parent_label, label):
                        raise CertificateError(
                            f"shared leaf {label} not pasted to copy {copy}"
                        )
                if graph.degree(label) != self.k:
                    raise CertificateError(
                        f"shared leaf {label} has degree {graph.degree(label)}, "
                        f"expected {self.k}"
                    )
            else:
                members = [
                    ts.unshared_leaf_label(leaf.id, copy) for copy in range(self.k)
                ]
                for copy, member in enumerate(members):
                    parent_label = ts.interior_label(copy, leaf.parent)
                    if not graph.has_edge(parent_label, member):
                        raise CertificateError(
                            f"unshared member {member} not linked to its copy"
                        )
                for i in range(self.k):
                    for j in range(i + 1, self.k):
                        if not graph.has_edge(members[i], members[j]):
                            raise CertificateError(
                                f"unshared slot {leaf.id} clique missing edge "
                                f"{members[i]} -- {members[j]}"
                            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the certificate to JSON."""
        payload = {
            "k": self.k,
            "rule": self.rule,
            "interiors": [
                {
                    "id": r.id,
                    "parent": r.parent,
                    "depth": r.depth,
                    "interior_children": list(r.interior_children),
                    "leaf_children": list(r.leaf_children),
                    "added_leaf_children": list(r.added_leaf_children),
                }
                for r in sorted(self.interiors.values(), key=lambda r: r.id)
            ],
            "leaves": [
                {
                    "id": l.id,
                    "parent": l.parent,
                    "depth": l.depth,
                    "kind": l.kind,
                    "added": l.added,
                }
                for l in sorted(self.leaves.values(), key=lambda l: l.id)
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "ConstructionCertificate":
        """Reconstruct a certificate serialised with :meth:`to_json`.

        Raises
        ------
        CertificateError
            If the payload is malformed.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CertificateError(f"invalid certificate JSON: {exc}") from exc
        try:
            interiors = {
                entry["id"]: InteriorRecord(
                    id=entry["id"],
                    parent=entry["parent"],
                    depth=entry["depth"],
                    interior_children=tuple(entry["interior_children"]),
                    leaf_children=tuple(entry["leaf_children"]),
                    added_leaf_children=tuple(entry["added_leaf_children"]),
                )
                for entry in payload["interiors"]
            }
            leaves = {
                entry["id"]: LeafRecord(
                    id=entry["id"],
                    parent=entry["parent"],
                    depth=entry["depth"],
                    kind=entry["kind"],
                    added=entry["added"],
                )
                for entry in payload["leaves"]
            }
            return cls(
                k=payload["k"],
                rule=payload.get("rule", "unspecified"),
                interiors=interiors,
                leaves=leaves,
            )
        except (KeyError, TypeError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc
