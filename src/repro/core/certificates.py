"""Construction certificates: the builder's own structural witness.

Every LHG builder in this library returns, next to the graph, a
:class:`ConstructionCertificate` — an immutable snapshot of the abstract
tree it pasted.  Holding the witness means

* the verifier can check *structural* claims (copy counts, leaf sharing,
  degree budget, child quotas) exactly, instead of re-deriving them
  heuristically from the bare graph, and
* the disjoint-path router can produce the k node-disjoint Menger paths
  in O(k · log n) straight from the tree structure, the constructive
  argument behind the paper's connectivity lemma.

The certificate is also the serialisation format for built topologies
(:meth:`to_json` / :meth:`from_json`), so an overlay controller can ship
the structure, not just the edge list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CertificateError
import repro.core.tree_schema as ts


@dataclass(frozen=True)
class InteriorRecord:
    """Frozen snapshot of one abstract-tree interior node."""

    id: int
    parent: Optional[int]
    depth: int
    interior_children: Tuple[int, ...]
    leaf_children: Tuple[int, ...]
    added_leaf_children: Tuple[int, ...]

    def child_count(self) -> int:
        """Total children (interiors + structural leaves + added leaves)."""
        return (
            len(self.interior_children)
            + len(self.leaf_children)
            + len(self.added_leaf_children)
        )


@dataclass(frozen=True)
class LeafRecord:
    """Frozen snapshot of one leaf slot."""

    id: int
    parent: int
    depth: int
    kind: str
    added: bool


@dataclass(frozen=True)
class ConstructionCertificate:
    """Structural witness of a pasted k-copy LHG construction.

    Attributes
    ----------
    k:
        Connectivity level — also the number of pasted tree copies.
    rule:
        Name of the construction rule that produced the graph
        (``"jenkins-demers"``, ``"k-tree"``, ``"k-diamond"``); set by the
        builder via :meth:`with_rule`.
    interiors / leaves:
        Snapshots of the abstract tree, keyed by id.
    """

    k: int
    rule: str
    interiors: Dict[int, InteriorRecord]
    leaves: Dict[int, LeafRecord]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_schema(cls, schema: ts.TreeSchema, rule: str = "unspecified"):
        """Snapshot a :class:`~repro.core.tree_schema.TreeSchema`."""
        interiors = {
            i.id: InteriorRecord(
                id=i.id,
                parent=i.parent,
                depth=i.depth,
                interior_children=tuple(i.interior_children),
                leaf_children=tuple(i.leaf_children),
                added_leaf_children=tuple(i.added_leaf_children),
            )
            for i in schema.interiors.values()
        }
        leaves = {
            l.id: LeafRecord(
                id=l.id, parent=l.parent, depth=l.depth, kind=l.kind, added=l.added
            )
            for l in schema.leaves.values()
        }
        return cls(k=schema.k, rule=rule, interiors=interiors, leaves=leaves)

    def with_rule(self, rule: str) -> "ConstructionCertificate":
        """Return a copy tagged with the producing rule's name."""
        return ConstructionCertificate(
            k=self.k, rule=rule, interiors=self.interiors, leaves=self.leaves
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def interior_count(self) -> int:
        """Number of interior nodes of the abstract tree."""
        return len(self.interiors)

    @property
    def shared_leaves(self) -> List[LeafRecord]:
        """Leaf slots realised as one pasted node."""
        return [l for l in self.leaves.values() if l.kind == ts.SHARED]

    @property
    def unshared_leaves(self) -> List[LeafRecord]:
        """Leaf slots realised as k-cliques."""
        return [l for l in self.leaves.values() if l.kind == ts.UNSHARED]

    def expected_node_count(self) -> int:
        """Graph nodes the pasted construction must have."""
        return (
            self.k * self.interior_count
            + len(self.shared_leaves)
            + self.k * len(self.unshared_leaves)
        )

    def expected_edge_count(self) -> int:
        """Graph edges the pasted construction must have.

        Per copy: one edge per non-root interior (to its parent); plus
        k edges per shared leaf slot (one per copy); plus, per unshared
        slot, k parent edges and the C(k, 2) clique.
        """
        interior_edges = self.k * (self.interior_count - 1)
        shared_edges = self.k * len(self.shared_leaves)
        unshared = len(self.unshared_leaves)
        unshared_edges = unshared * (self.k + self.k * (self.k - 1) // 2)
        return interior_edges + shared_edges + unshared_edges

    def height(self) -> int:
        """Height of the abstract tree."""
        return max(l.depth for l in self.leaves.values())

    def root_id(self) -> int:
        """Id of the abstract root (the interior with no parent)."""
        for record in self.interiors.values():
            if record.parent is None:
                return record.id
        raise CertificateError("certificate has no root interior")

    def path_to_root(self, interior_id: int) -> List[int]:
        """Interior ids from ``interior_id`` up to and including the root."""
        if interior_id not in self.interiors:
            raise CertificateError(f"unknown interior id {interior_id}")
        path = [interior_id]
        while True:
            parent = self.interiors[path[-1]].parent
            if parent is None:
                return path
            path.append(parent)

    def descendant_leaves(self, interior_id: int) -> List[int]:
        """All leaf-slot ids in the subtree rooted at ``interior_id``.

        Added leaf slots count — they hang off the subtree like any
        other leaf and are valid splice points for routing.
        """
        if interior_id not in self.interiors:
            raise CertificateError(f"unknown interior id {interior_id}")
        result: List[int] = []
        stack = [interior_id]
        while stack:
            node = self.interiors[stack.pop()]
            result.extend(node.leaf_children)
            result.extend(node.added_leaf_children)
            stack.extend(node.interior_children)
        return result

    def interior_path(self, from_id: int, to_id: int) -> List[int]:
        """The unique abstract-tree path between two interiors."""
        up_a = self.path_to_root(from_id)
        up_b = self.path_to_root(to_id)
        set_a = {node: idx for idx, node in enumerate(up_a)}
        for idx_b, node in enumerate(up_b):
            if node in set_a:
                return up_a[: set_a[node] + 1] + list(reversed(up_b[:idx_b]))
        raise CertificateError("interiors share no root — corrupt certificate")

    # ------------------------------------------------------------------
    # Verification against a concrete graph
    # ------------------------------------------------------------------

    def verify_graph(self, graph) -> None:
        """Check that ``graph`` is exactly the pasting of this certificate.

        Raises
        ------
        CertificateError
            Describing the first structural mismatch found.
        """
        if graph.number_of_nodes() != self.expected_node_count():
            raise CertificateError(
                f"node count {graph.number_of_nodes()} != expected "
                f"{self.expected_node_count()}"
            )
        if graph.number_of_edges() != self.expected_edge_count():
            raise CertificateError(
                f"edge count {graph.number_of_edges()} != expected "
                f"{self.expected_edge_count()}"
            )
        for copy in range(self.k):
            for record in self.interiors.values():
                label = ts.interior_label(copy, record.id)
                if not graph.has_node(label):
                    raise CertificateError(f"missing interior node {label}")
                if record.parent is not None:
                    parent_label = ts.interior_label(copy, record.parent)
                    if not graph.has_edge(parent_label, label):
                        raise CertificateError(
                            f"missing tree edge {parent_label} -- {label}"
                        )
        for leaf in self.leaves.values():
            if leaf.kind == ts.SHARED:
                label = ts.shared_leaf_label(leaf.id)
                for copy in range(self.k):
                    parent_label = ts.interior_label(copy, leaf.parent)
                    if not graph.has_edge(parent_label, label):
                        raise CertificateError(
                            f"shared leaf {label} not pasted to copy {copy}"
                        )
                if graph.degree(label) != self.k:
                    raise CertificateError(
                        f"shared leaf {label} has degree {graph.degree(label)}, "
                        f"expected {self.k}"
                    )
            else:
                members = [
                    ts.unshared_leaf_label(leaf.id, copy) for copy in range(self.k)
                ]
                for copy, member in enumerate(members):
                    parent_label = ts.interior_label(copy, leaf.parent)
                    if not graph.has_edge(parent_label, member):
                        raise CertificateError(
                            f"unshared member {member} not linked to its copy"
                        )
                for i in range(self.k):
                    for j in range(i + 1, self.k):
                        if not graph.has_edge(members[i], members[j]):
                            raise CertificateError(
                                f"unshared slot {leaf.id} clique missing edge "
                                f"{members[i]} -- {members[j]}"
                            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the certificate to JSON."""
        payload = {
            "k": self.k,
            "rule": self.rule,
            "interiors": [
                {
                    "id": r.id,
                    "parent": r.parent,
                    "depth": r.depth,
                    "interior_children": list(r.interior_children),
                    "leaf_children": list(r.leaf_children),
                    "added_leaf_children": list(r.added_leaf_children),
                }
                for r in sorted(self.interiors.values(), key=lambda r: r.id)
            ],
            "leaves": [
                {
                    "id": l.id,
                    "parent": l.parent,
                    "depth": l.depth,
                    "kind": l.kind,
                    "added": l.added,
                }
                for l in sorted(self.leaves.values(), key=lambda l: l.id)
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "ConstructionCertificate":
        """Reconstruct a certificate serialised with :meth:`to_json`.

        Raises
        ------
        CertificateError
            If the payload is malformed.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CertificateError(f"invalid certificate JSON: {exc}") from exc
        try:
            interiors = {
                entry["id"]: InteriorRecord(
                    id=entry["id"],
                    parent=entry["parent"],
                    depth=entry["depth"],
                    interior_children=tuple(entry["interior_children"]),
                    leaf_children=tuple(entry["leaf_children"]),
                    added_leaf_children=tuple(entry["added_leaf_children"]),
                )
                for entry in payload["interiors"]
            }
            leaves = {
                entry["id"]: LeafRecord(
                    id=entry["id"],
                    parent=entry["parent"],
                    depth=entry["depth"],
                    kind=entry["kind"],
                    added=entry["added"],
                )
                for entry in payload["leaves"]
            }
            return cls(
                k=payload["k"],
                rule=payload.get("rule", "unspecified"),
                interiors=interiors,
                leaves=leaves,
            )
        except (KeyError, TypeError) as exc:
            raise CertificateError(f"malformed certificate payload: {exc}") from exc


# ----------------------------------------------------------------------
# Structural connectivity certificates (per-property witness proofs)
# ----------------------------------------------------------------------
#
# Dinic max-flow answers "is κ ≥ k?" in O(k·n·m) — fine at n = 256,
# hopeless at n = 10⁶.  The construction certificate supports a cheaper
# argument: check the *premises* of the construction theorem instead of
# the *conclusion* on the bare graph.
#
# P1  A graph of k tree copies pasted at shared leaves (or at unshared
#     k-cliques) is k-node-connected: between any two nodes, route one
#     path through each copy — the copies are disjoint except at pasted
#     leaves, and each pasted leaf joins all k copies.  Premises to
#     check: k ≥ 2, n > k, the interior records form one rooted tree,
#     every interior has at least one child, every leaf slot has a valid
#     kind and an existing parent.
# P2  λ ≥ κ (Whitney), so P1's witness carries over verbatim.
# P3  If every edge has an endpoint of degree exactly k, removing any
#     edge drops δ below k and with it κ — so given P1, the graph is
#     link-minimal.  Leaf nodes always have degree exactly k (a shared
#     leaf meets its parent in k copies; an unshared clique member has
#     one parent edge plus k − 1 clique edges), so only the
#     interior–interior tree edges need checking.
# P4  diameter ≤ 2·(height + 1) + 1 (two root-to-leaf walks plus a
#     splice hop), so height small enough ⟹ the logarithmic budget of
#     repro.graphs.properties.logarithmic_diameter_bound holds.
#
# A witness can be *inconclusive*: when a premise fails (say a K-TREE
# host cluster breaks the degree witness) the structural method cannot
# decide the property either way — ``holds`` is False and ``conclusive``
# is False, and callers fall back to the exact checkers.  The test suite
# cross-checks every conclusive verdict against Dinic on the full small
# (n, k) census.


@dataclass(frozen=True)
class PropertyWitness:
    """One property's structural verdict.

    ``holds`` is the verdict; ``conclusive`` says whether the structural
    argument could decide at all (False means "fall back to the exact
    checker", not "the property fails").
    """

    property_id: str
    holds: bool
    conclusive: bool
    argument: str
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "ok" if self.holds else ("FAIL" if self.conclusive else "??")
        return f"{self.property_id}={verdict}"


@dataclass(frozen=True)
class StructuralProofs:
    """Witness proofs for LHG Properties 1–4, derived from structure.

    Produced by :func:`structural_proofs` (from a
    :class:`ConstructionCertificate`) or
    :meth:`repro.graphs.implicit.ImplicitJDOracle.structural_proofs`
    (from the JD plan arithmetic, never materialising the graph).
    """

    n: int
    k: int
    rule: str
    witnesses: Tuple[PropertyWitness, ...]

    def witness(self, property_id: str) -> PropertyWitness:
        """The witness for ``property_id`` (``"P1"`` … ``"P4"``).

        Raises
        ------
        CertificateError
            If no such witness exists.
        """
        for witness in self.witnesses:
            if witness.property_id == property_id:
                return witness
        raise CertificateError(f"no witness for property {property_id!r}")

    @property
    def all_hold(self) -> bool:
        """True when every property is conclusively certified to hold."""
        return all(w.holds and w.conclusive for w in self.witnesses)

    @property
    def conclusive(self) -> bool:
        """True when every witness reached a verdict."""
        return all(w.conclusive for w in self.witnesses)

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = " ".join(str(w) for w in self.witnesses)
        return f"StructuralProofs(n={self.n}, k={self.k}, {self.rule}): {status}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the CLI and benchmarks)."""
        return {
            "n": self.n,
            "k": self.k,
            "rule": self.rule,
            "all_hold": self.all_hold,
            "witnesses": [
                {
                    "property": w.property_id,
                    "holds": w.holds,
                    "conclusive": w.conclusive,
                    "argument": w.argument,
                    "details": dict(w.details),
                }
                for w in self.witnesses
            ],
        }


def assemble_structural_proofs(
    n: int,
    k: int,
    rule: str,
    height: int,
    tree_ok: bool,
    tree_detail: str,
    degree_witness_ok: bool,
    degree_witness_detail: str,
    num_edges: int,
) -> StructuralProofs:
    """Assemble the P1–P4 witnesses from checked premise facts.

    The caller (certificate walker or implicit-oracle arithmetic) has
    already verified the premises; this function encodes the inference
    rules connecting them to the four properties, so both certifiers
    produce identical proofs for the same construction.
    """
    from repro.graphs.properties import logarithmic_diameter_bound

    domain_ok = k >= 2 and n > k
    p1_holds = tree_ok and domain_ok
    p1 = PropertyWitness(
        property_id="P1",
        holds=p1_holds,
        conclusive=tree_ok and domain_ok,
        argument=(
            "k pasted tree copies admit k internally node-disjoint paths "
            "between any two nodes (one routed through each copy)"
        ),
        details={"premises": tree_detail, "k": k, "n": n},
    )
    p2 = PropertyWitness(
        property_id="P2",
        holds=p1_holds,
        conclusive=p1.conclusive,
        argument="λ ≥ κ (Whitney), so P1's witness implies λ ≥ k",
        details={"from": "P1"},
    )
    p3 = PropertyWitness(
        property_id="P3",
        holds=p1_holds and degree_witness_ok,
        conclusive=p1.conclusive and degree_witness_ok,
        argument=(
            "every edge has an endpoint of degree exactly k, so removing "
            "any edge drops δ — and with it κ — below k"
        ),
        details={"degree_witness": degree_witness_detail, "edges": num_edges},
    )
    structural_bound = 2 * (height + 1) + 1
    budget = logarithmic_diameter_bound(n, k) if n >= 2 else 0
    # A connected graph's diameter is at most n − 1, so a budget that
    # large (the k ≤ 2 vacuous case) is satisfied outright even when the
    # tree-walk bound overshoots it.
    bound_fits = structural_bound <= budget or budget >= n - 1
    p4 = PropertyWitness(
        property_id="P4",
        holds=tree_ok and bound_fits,
        conclusive=tree_ok and bound_fits,
        argument=(
            "diameter ≤ 2·(height + 1) + 1 — two root-to-leaf walks plus "
            "a splice hop — which fits the logarithmic budget"
        ),
        details={
            "height": height,
            "structural_bound": structural_bound,
            "budget": budget,
        },
    )
    return StructuralProofs(n=n, k=k, rule=rule, witnesses=(p1, p2, p3, p4))


def _certificate_tree_premises(
    certificate: ConstructionCertificate,
) -> Tuple[bool, str]:
    """Check that the certificate's records form a sound pasted tree."""
    interiors = certificate.interiors
    roots = [r.id for r in interiors.values() if r.parent is None]
    if len(roots) != 1:
        return False, f"expected exactly one root, found {len(roots)}"
    limit = len(interiors)
    for record in interiors.values():
        if record.parent is not None:
            parent = interiors.get(record.parent)
            if parent is None:
                return False, f"interior {record.id} has unknown parent"
            if record.id not in parent.interior_children:
                return (
                    False,
                    f"interior {record.id} missing from parent's child list",
                )
        if record.child_count() == 0:
            return False, f"interior {record.id} has no children"
        steps = 0
        node = record
        while node.parent is not None:
            node = interiors[node.parent]
            steps += 1
            if steps > limit:
                return False, f"parent cycle through interior {record.id}"
    for leaf in certificate.leaves.values():
        if leaf.kind not in (ts.SHARED, ts.UNSHARED):
            return False, f"leaf {leaf.id} has unknown kind {leaf.kind!r}"
        parent = interiors.get(leaf.parent)
        if parent is None:
            return False, f"leaf {leaf.id} has unknown parent"
        if leaf.id not in parent.leaf_children + parent.added_leaf_children:
            return False, f"leaf {leaf.id} missing from parent's child list"
    return True, (
        f"one rooted tree of {len(interiors)} interiors, "
        f"{len(certificate.leaves)} pasted leaf slots"
    )


def _certificate_degree_witness(
    certificate: ConstructionCertificate,
) -> Tuple[bool, str]:
    """Check P3's premise: every edge has an endpoint of degree exactly k.

    Leaf edges qualify automatically (leaf nodes have degree exactly k
    in any pasted construction), so only interior–interior tree edges
    are examined, using the degree each interior copy will have:
    parent edge plus one edge per child slot.
    """
    k = certificate.k
    interiors = certificate.interiors

    def interior_degree(record: InteriorRecord) -> int:
        return (0 if record.parent is None else 1) + record.child_count()

    for record in interiors.values():
        if record.parent is None:
            continue
        if interior_degree(record) == k:
            continue
        if interior_degree(interiors[record.parent]) == k:
            continue
        return False, (
            f"tree edge {record.parent}--{record.id} joins degrees "
            f"{interior_degree(interiors[record.parent])} and "
            f"{interior_degree(record)}, neither exactly k={k}"
        )
    return True, (
        f"all leaf nodes have degree k={k}; every interior-interior edge "
        f"touches an interior of degree exactly k"
    )


def structural_proofs(certificate: ConstructionCertificate) -> StructuralProofs:
    """Certify LHG Properties 1–4 from a construction certificate.

    O(m) in the number of abstract-tree records — independent of k and
    of the pasted graph's size, so it scales where Dinic cannot.  See
    the block comment above for the per-property arguments.
    """
    tree_ok, tree_detail = _certificate_tree_premises(certificate)
    if tree_ok:
        witness_ok, witness_detail = _certificate_degree_witness(certificate)
    else:
        witness_ok, witness_detail = False, "tree premises failed"
    return assemble_structural_proofs(
        n=certificate.expected_node_count(),
        k=certificate.k,
        rule=certificate.rule,
        height=certificate.height(),
        tree_ok=tree_ok,
        tree_detail=tree_detail,
        degree_witness_ok=witness_ok,
        degree_witness_detail=witness_detail,
        num_edges=certificate.expected_edge_count(),
    )
