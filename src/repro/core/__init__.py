"""The paper's contribution: Logarithmic Harary Graph constructions.

* :mod:`repro.core.tree_schema` — the abstract k-copy pasted tree all
  constructions share;
* :mod:`repro.core.jenkins_demers` — the target paper's construction;
* :mod:`repro.core.ktree` / :mod:`repro.core.kdiamond` — follow-on
  constraint builders (extensions) that close the JD coverage gaps and
  double the k-regular sizes;
* :mod:`repro.core.properties` — the Property 1–5 verifier;
* :mod:`repro.core.certificates` — structural witnesses;
* :mod:`repro.core.routing` — certificate-based O(log n) routing and
  Menger path witnesses;
* :mod:`repro.core.existence` — EX/REG characteristic functions and the
  :func:`build_lhg` façade.
"""

from repro.core.certificates import ConstructionCertificate
from repro.core.enumeration import (
    construction_reaches,
    enumerate_k_regular_graphs,
    lhg_census,
)
from repro.core.existence import (
    RULES,
    build_lhg,
    coverage_table,
    exists,
    regular_exists,
    regularity_table,
)
from repro.core.jenkins_demers import (
    is_jd_constructible,
    jd_constructible_sizes,
    jd_gap_sizes,
    jd_regular_sizes,
    jenkins_demers_graph,
)
from repro.core.kdiamond import (
    kdiamond_exists,
    kdiamond_graph,
    kdiamond_only_regular_sizes,
    kdiamond_regular_exists,
    kdiamond_regular_sizes,
    satisfies_kdiamond,
)
from repro.core.ktree import (
    ktree_exists,
    ktree_graph,
    ktree_regular_exists,
    ktree_regular_sizes,
    satisfies_ktree,
)
from repro.core.planning import TopologyPlan, plan_topology, required_k
from repro.core.properties import LHGReport, check_lhg, is_lhg
from repro.core.routing import locate, menger_witness, tree_route
from repro.core.tree_schema import TreeSchema, paste_copies

__all__ = [
    "ConstructionCertificate",
    "LHGReport",
    "RULES",
    "TopologyPlan",
    "TreeSchema",
    "build_lhg",
    "check_lhg",
    "construction_reaches",
    "coverage_table",
    "enumerate_k_regular_graphs",
    "exists",
    "is_jd_constructible",
    "is_lhg",
    "jd_constructible_sizes",
    "jd_gap_sizes",
    "jd_regular_sizes",
    "jenkins_demers_graph",
    "kdiamond_exists",
    "kdiamond_graph",
    "kdiamond_only_regular_sizes",
    "kdiamond_regular_exists",
    "kdiamond_regular_sizes",
    "ktree_exists",
    "ktree_graph",
    "ktree_regular_exists",
    "ktree_regular_sizes",
    "lhg_census",
    "locate",
    "menger_witness",
    "paste_copies",
    "plan_topology",
    "regular_exists",
    "regularity_table",
    "required_k",
    "satisfies_kdiamond",
    "satisfies_ktree",
    "tree_route",
]
