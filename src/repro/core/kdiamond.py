"""K-DIAMOND constraint builder (extension module, follow-on literature).

**Scope note.** Like :mod:`repro.core.ktree`, K-DIAMOND comes from the
follow-on work, not the target Jenkins–Demers paper.  It exists to make
**k-regular** LHGs (Property 5 — the absolute-minimum-edge graphs) reach
twice as many sizes:

* K-TREE / JD regular points:   n = 2k + 2α(k − 1)
* K-DIAMOND regular points:     n = 2k +  α(k − 1)

The trick is the **unshared leaf**: instead of pasting a leaf slot into
one node shared by all k trees, realise it as a k-clique with one member
per tree copy.  Converting a shared slot to an unshared one adds k − 1
nodes — *half* a conversion step — and every clique member has degree
exactly k (k − 1 clique edges + 1 parent edge), preserving regularity.

Added leaves are capped at k − 2 per host (rule 5d), exactly the residue
range left over after conversions and one optional unshared slot:

    n = 2k + α(k − 1) + j,   α ∈ ℕ, j ∈ {0 … k−2}
    EX_K-DIAMOND(n, k)  ⇔  n ≥ 2k          (same as K-TREE)
    REG_K-DIAMOND(n, k) ⇔  (n − 2k) mod (k − 1) = 0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InfeasiblePairError
from repro.core.tree_schema import TreeSchema, grown_schema, paste_copies

RULE_NAME = "k-diamond"


@dataclass(frozen=True)
class KDiamondPlan:
    """Build plan: α conversions, u ∈ {0, 1} unshared slots, j added leaves."""

    n: int
    k: int
    conversions: int
    unshared: int
    added_leaves: int


def kdiamond_exists(n: int, k: int) -> bool:
    """The EX_K-DIAMOND characteristic function: true iff n ≥ 2k (k ≥ 2)."""
    return k >= 2 and n >= 2 * k


def kdiamond_regular_exists(n: int, k: int) -> bool:
    """The REG_K-DIAMOND characteristic function: n = 2k + α(k − 1)."""
    if not kdiamond_exists(n, k):
        return False
    return (n - 2 * k) % (k - 1) == 0


def kdiamond_plan(n: int, k: int) -> KDiamondPlan:
    """Compute the K-DIAMOND plan for (n, k).

    Maximising conversions leaves a residue r ∈ {0 … 2k−3}; one unshared
    slot absorbs k − 1 of it, added leaves the rest (≤ k − 2, within the
    rule-5d quota of a single host).

    Raises
    ------
    InfeasiblePairError
        If n < 2k or k < 2 — K-DIAMOND has no other gaps.
    """
    if k < 2:
        raise InfeasiblePairError(n, k, RULE_NAME, "needs k >= 2")
    if n < 2 * k:
        raise InfeasiblePairError(
            n, k, RULE_NAME, f"minimum size for connectivity k={k} is n=2k={2 * k}"
        )
    step = 2 * (k - 1)
    conversions = (n - 2 * k) // step
    residue = (n - 2 * k) % step
    unshared = residue // (k - 1)
    added = residue % (k - 1)
    return KDiamondPlan(
        n=n, k=k, conversions=conversions, unshared=unshared, added_leaves=added
    )


def kdiamond_schema(n: int, k: int) -> TreeSchema:
    """Build the abstract K-DIAMOND tree for (n, k)."""
    plan = kdiamond_plan(n, k)
    schema = grown_schema(k, plan.conversions)
    for _ in range(plan.unshared):
        schema.mark_unshared()
    if plan.added_leaves:
        host = schema.interiors_above_leaves(include_root=True)[0]
        for _ in range(plan.added_leaves):
            schema.add_extra_leaf(host)
    assert schema.node_count() == n, schema.describe()
    return schema


def kdiamond_graph(n: int, k: int):
    """Build an LHG satisfying the K-DIAMOND constraint for any n ≥ 2k.

    k-regular whenever ``(n − 2k) mod (k − 1) == 0`` — twice as dense a
    set of regular sizes as the JD/K-TREE constructions offer.

    Returns ``(Graph, ConstructionCertificate)``.

    Raises
    ------
    InfeasiblePairError
        If n < 2k or k < 2.
    """
    schema = kdiamond_schema(n, k)
    graph, certificate = paste_copies(schema)
    graph.name = f"kdiamond({n},{k})"
    return graph, certificate.with_rule(RULE_NAME)


def kdiamond_regular_sizes(k: int, max_n: int) -> List[int]:
    """All n ≤ max_n where the K-DIAMOND construction is k-regular."""
    sizes = []
    n = 2 * k
    while n <= max_n:
        sizes.append(n)
        n += k - 1
    return sizes


def kdiamond_only_regular_sizes(k: int, max_n: int) -> List[int]:
    """Sizes where only K-DIAMOND (not K-TREE/JD) yields a k-regular LHG.

    These are the odd-α points n = 2k + α(k − 1): infinitely many of
    them, the follow-on paper's headline regularity result — reproduced
    by experiment T5.
    """
    from repro.core.ktree import ktree_regular_exists

    return [
        n
        for n in kdiamond_regular_sizes(k, max_n)
        if not ktree_regular_exists(n, k)
    ]


def satisfies_kdiamond(certificate) -> bool:
    """Check a construction certificate against the K-DIAMOND rule set.

    Verifies: leaves shared or unshared (rules 2–4); root has k children
    (5b); other interiors 0 or k−1 structural children (5c); added
    leaves only just above the leaves, at most k−2 each (5d); tree
    height-balanced (5a).
    """
    k = certificate.k
    depths = {l.depth for l in certificate.leaves.values()}
    if max(depths) - min(depths) > 1:
        return False
    if any(l.kind not in ("shared", "unshared") for l in certificate.leaves.values()):
        return False
    for record in certificate.interiors.values():
        structural = len(record.interior_children) + len(record.leaf_children)
        added = len(record.added_leaf_children)
        if record.parent is None:
            if structural != k:
                return False
        else:
            if structural not in (0, k - 1):
                return False
        if added:
            if not record.leaf_children:
                return False
            if added > max(0, k - 2):
                return False
    return True
