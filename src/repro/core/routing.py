"""Structure-aware routing over pasted LHG constructions.

The point of Property 4 is that flooding — and point-to-point routing —
needs only O(log n) hops.  This module exploits the construction
certificate to route **without any global search**:

* :func:`locate` classifies a graph label back into the abstract tree
  (which copy, which interior / leaf slot);
* :func:`tree_route` produces an s→t path of length ≤ 2·height + O(1)
  in O(log n) time, using only the certificate (the "structural route");
* :func:`menger_witness` returns k internally node-disjoint s–t paths —
  the constructive content of the paper's connectivity lemma — via the
  exact max-flow machinery, validated against the certificate's k.

The routing ablation benchmark (A2) compares the structural route
against BFS shortest paths (quality) and the flow witness (cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CertificateError, GraphError
from repro.core.certificates import ConstructionCertificate
from repro.core.tree_schema import (
    SHARED,
    interior_label,
    shared_leaf_label,
    unshared_leaf_label,
)
from repro.graphs.connectivity import node_disjoint_paths
from repro.graphs.graph import Graph, Node


@dataclass(frozen=True)
class NodeLocation:
    """Where a graph label sits in the abstract construction tree.

    ``kind`` is ``"interior"``, ``"shared-leaf"`` or ``"unshared-leaf"``;
    ``copy`` is the tree copy for interiors and unshared members, and
    ``None`` for shared leaves (they belong to every copy).
    """

    kind: str
    copy: Optional[int]
    tree_id: int  # interior id or leaf-slot id


def locate(certificate: ConstructionCertificate, label: Node) -> NodeLocation:
    """Classify a pasted-graph label against its certificate.

    Raises
    ------
    CertificateError
        If the label does not belong to this construction.
    """
    if isinstance(label, tuple) and len(label) == 3 and label[0] == "T":
        _, copy, interior_id = label
        if 0 <= copy < certificate.k and interior_id in certificate.interiors:
            return NodeLocation(kind="interior", copy=copy, tree_id=interior_id)
    if isinstance(label, tuple) and len(label) == 2 and label[0] == "L":
        _, leaf_id = label
        leaf = certificate.leaves.get(leaf_id)
        if leaf is not None and leaf.kind == SHARED:
            return NodeLocation(kind="shared-leaf", copy=None, tree_id=leaf_id)
    if isinstance(label, tuple) and len(label) == 3 and label[0] == "U":
        _, leaf_id, copy = label
        leaf = certificate.leaves.get(leaf_id)
        if leaf is not None and leaf.kind != SHARED and 0 <= copy < certificate.k:
            return NodeLocation(kind="unshared-leaf", copy=copy, tree_id=leaf_id)
    raise CertificateError(f"label {label!r} is not part of this construction")


def _leaf_entry(
    certificate: ConstructionCertificate, leaf_id: int, copy: int
) -> Node:
    """The graph node through which copy ``copy`` touches leaf slot ``leaf_id``."""
    leaf = certificate.leaves[leaf_id]
    if leaf.kind == SHARED:
        return shared_leaf_label(leaf_id)
    return unshared_leaf_label(leaf_id, copy)


def _descend_to_leaf(
    certificate: ConstructionCertificate, interior_id: int, copy: int
) -> Tuple[List[Node], int]:
    """Path from an interior's copy down to some descendant leaf's entry node.

    Returns ``(path, leaf_id)`` where the path starts at the interior and
    ends at the leaf node for this copy.
    """
    path = [interior_label(copy, interior_id)]
    current = certificate.interiors[interior_id]
    while True:
        if current.leaf_children or current.added_leaf_children:
            leaf_id = (
                current.leaf_children[0]
                if current.leaf_children
                else current.added_leaf_children[0]
            )
            path.append(_leaf_entry(certificate, leaf_id, copy))
            return path, leaf_id
        current = certificate.interiors[current.interior_children[0]]
        path.append(interior_label(copy, current.id))


def _interior_walk(
    certificate: ConstructionCertificate, copy: int, from_id: int, to_id: int
) -> List[Node]:
    """The unique within-copy tree path between two interiors."""
    return [
        interior_label(copy, node)
        for node in certificate.interior_path(from_id, to_id)
    ]


def _cross_copies(
    certificate: ConstructionCertificate,
    from_interior: int,
    from_copy: int,
    to_copy: int,
) -> Tuple[List[Node], int]:
    """Path from an interior's copy to the *same* interior in another copy.

    Descends to a descendant leaf, crosses at the pasting point (free for
    shared leaves, one clique hop for unshared), and climbs back up.
    Returns ``(path, leaf_id)``.
    """
    down, leaf_id = _descend_to_leaf(certificate, from_interior, from_copy)
    leaf = certificate.leaves[leaf_id]
    path = list(down)
    if leaf.kind != SHARED:
        path.append(unshared_leaf_label(leaf_id, to_copy))
    # Climb from the leaf's parent in the target copy back to the interior.
    climb = _interior_walk(certificate, to_copy, leaf.parent, from_interior)
    path.extend(climb)
    return path, leaf_id


def tree_route(
    certificate: ConstructionCertificate, source: Node, target: Node
) -> List[Node]:
    """Route from ``source`` to ``target`` using only the certificate.

    The returned path is simple, valid in the pasted graph, and at most
    ``2·(height + 1) + 2`` hops long — O(log n) for k ≥ 3 — computed in
    time proportional to its length.  It is **not** always a shortest
    path (that is what BFS is for); benchmark A2 measures the stretch.

    Raises
    ------
    CertificateError
        If either label is not part of the construction.
    """
    if source == target:
        return [source]
    src = locate(certificate, source)
    dst = locate(certificate, target)

    # Normalise both endpoints to interiors plus optional leaf prefixes:
    # a leaf endpoint contributes its parent interior and a one-hop stub.
    src_prefix, src_interior, src_copy = _anchor(certificate, source, src, prefer=dst)
    dst_prefix, dst_interior, dst_copy = _anchor(certificate, target, dst, prefer=src)

    if src_copy == dst_copy:
        middle = _interior_walk(certificate, src_copy, src_interior, dst_interior)
    else:
        cross, _ = _cross_copies(certificate, src_interior, src_copy, dst_copy)
        middle = cross + _interior_walk(
            certificate, dst_copy, src_interior, dst_interior
        )[1:]

    path = src_prefix + middle + list(reversed(dst_prefix))
    return _simplify(path)


def _anchor(
    certificate: ConstructionCertificate,
    label: Node,
    location: NodeLocation,
    prefer: NodeLocation,
) -> Tuple[List[Node], int, int]:
    """Anchor a node at an interior: ``(prefix-before-interior, interior, copy)``.

    For interiors the prefix is empty.  Leaves anchor at their parent;
    shared leaves choose the *preferred* copy (the other endpoint's) when
    available so same-copy routing stays within one tree.
    """
    if location.kind == "interior":
        return [], location.tree_id, location.copy
    leaf = certificate.leaves[location.tree_id]
    if location.kind == "shared-leaf":
        copy = prefer.copy if prefer.copy is not None else 0
        return [label], leaf.parent, copy
    return [label], leaf.parent, location.copy


def _simplify(path: List[Node]) -> List[Node]:
    """Remove immediate duplicates and loops, keeping the walk a simple path."""
    out: List[Node] = []
    index = {}
    for node in path:
        if node in index:
            cut = index[node]
            for dropped in out[cut + 1 :]:
                del index[dropped]
            del out[cut + 1 :]
        else:
            index[node] = len(out)
            out.append(node)
    return out


def route_length_bound(certificate: ConstructionCertificate) -> int:
    """Worst-case hop count :func:`tree_route` may produce."""
    return 2 * (certificate.height() + 1) + 2


def menger_witness(
    graph: Graph,
    certificate: ConstructionCertificate,
    source: Node,
    target: Node,
) -> List[List[Node]]:
    """Return k internally node-disjoint s–t paths (Menger witness).

    Uses the exact max-flow machinery and checks the family size against
    the certificate's k — a runtime re-proof of Property 1 for the pair.

    Raises
    ------
    GraphError
        If fewer than k disjoint paths exist (the graph is not the
        k-connected construction its certificate claims).
    """
    paths = node_disjoint_paths(graph, source, target)
    if len(paths) < certificate.k:
        raise GraphError(
            f"only {len(paths)} disjoint paths between {source!r} and "
            f"{target!r}; certificate claims k={certificate.k}"
        )
    return paths[: certificate.k]
