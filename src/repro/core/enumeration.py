"""Exhaustive enumeration of small k-regular graphs and LHG census.

The constructions build *particular* LHGs; how much of the LHG space do
they reach?  For tiny (n, k) this module answers exactly, by

* enumerating **all** connected k-regular graphs on n nodes up to
  isomorphism (backtracking over edge sets, deduplicated by invariant
  buckets plus exact isomorphism tests — seconds up to n = 8; the
  labelled-graph explosion makes n = 10 impractical in pure Python,
  hence the safety rail), and
* classifying each against the LHG properties.

Known cross-checks baked into the tests: there are exactly 2 cubic
graphs on 6 vertices (K_{3,3} and the triangular prism K3×K2), and 5
connected cubic graphs on 8 vertices — textbook values the enumerator
must reproduce.

The census shows the LHG *space* is strictly larger than any single
construction's image (the prism is a (6, 3) LHG the tree-pasting rule
never builds), which DESIGN.md records as a scope note.
"""

from __future__ import annotations

from itertools import combinations, permutations
from typing import Dict, Iterator, List, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph

MAX_ENUMERATION_NODES = 9


def _canonical_form(n: int, edges: frozenset) -> Tuple[Tuple[int, int], ...]:
    """Exact canonical form: lexicographically minimal relabelled edge set.

    Brute force over all n! permutations — exact but expensive; used
    only for one-off comparisons (:func:`construction_reaches`), never
    inside the enumeration loop.
    """
    best: Tuple[Tuple[int, int], ...] = ()
    first = True
    for perm in permutations(range(n)):
        relabelled = tuple(
            sorted(tuple(sorted((perm[u], perm[v]))) for u, v in edges)
        )
        if first or relabelled < best:
            best = relabelled
            first = False
    return best


def _cheap_invariant(n: int, adjacency: List[List[int]]) -> Tuple:
    """Isomorphism-invariant bucket key: per-node (triangles, 4-cycles
    through the node), sorted.  Cheap to compute, sharp enough to keep
    the per-bucket isomorphism checks to a handful."""
    sets = [set(a) for a in adjacency]
    profile = []
    for u in range(n):
        neighbors = adjacency[u]
        triangles = sum(
            1
            for i, v in enumerate(neighbors)
            for w in neighbors[i + 1 :]
            if w in sets[v]
        )
        # paths u-v-w with w != u: count pairs landing on common w => C4s
        two_step: Dict[int, int] = {}
        for v in neighbors:
            for w in adjacency[v]:
                if w != u:
                    two_step[w] = two_step.get(w, 0) + 1
        squares = sum(c * (c - 1) // 2 for c in two_step.values())
        profile.append((triangles, squares))
    return tuple(sorted(profile))


def _isomorphic(
    n: int, adj_a: List[List[int]], adj_b: List[List[int]]
) -> bool:
    """Backtracking isomorphism test for tiny graphs (same degree seq.)."""
    sets_a = [set(a) for a in adj_a]
    sets_b = [set(b) for b in adj_b]
    mapping: List[int] = [-1] * n
    used = [False] * n

    def extend(u: int) -> bool:
        if u == n:
            return True
        for candidate in range(n):
            if used[candidate] or len(sets_b[candidate]) != len(sets_a[u]):
                continue
            ok = True
            for v in range(u):
                if (v in sets_a[u]) != (mapping[v] in sets_b[candidate]):
                    ok = False
                    break
            if ok:
                mapping[u] = candidate
                used[candidate] = True
                if extend(u + 1):
                    return True
                used[candidate] = False
                mapping[u] = -1
        return False

    return extend(0)


def _is_connected_edge_set(n: int, adjacency: List[List[int]]) -> bool:
    seen = [False] * n
    stack = [0]
    seen[0] = True
    count = 1
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if not seen[neighbor]:
                seen[neighbor] = True
                count += 1
                stack.append(neighbor)
    return count == n


def enumerate_k_regular_graphs(n: int, k: int) -> List[Graph]:
    """Return all connected k-regular graphs on ``n`` nodes, one per
    isomorphism class.

    Backtracking: process nodes in order, connecting node ``u`` to
    higher-numbered candidates until its degree is ``k``; prune on
    degree overflow and on the impossibility of completing remaining
    degrees.  Results are deduplicated by exact canonical form.

    Raises
    ------
    GraphError
        If ``n > MAX_ENUMERATION_NODES`` (combinatorial safety rail),
        ``k ≥ n``, or ``k·n`` is odd (no k-regular graph exists).
    """
    if n > MAX_ENUMERATION_NODES:
        raise GraphError(
            f"enumeration is exact only up to n={MAX_ENUMERATION_NODES}; got {n}"
        )
    if k < 1 or k >= n:
        raise GraphError(f"need 1 <= k < n, got k={k}, n={n}")
    if (n * k) % 2 != 0:
        return []

    degrees = [0] * n
    adjacency: List[List[int]] = [[] for _ in range(n)]
    edges: List[Tuple[int, int]] = []
    buckets: Dict[Tuple, List[List[List[int]]]] = {}
    representatives: List[Graph] = []

    def remaining_feasible(node: int) -> bool:
        # every node from `node` on must still be able to reach degree k
        # using partners of index >= node (or already placed edges)
        for u in range(node, n):
            needed = k - degrees[u]
            if needed < 0:
                return False
            available = sum(
                1
                for v in range(node, n)
                if v != u and degrees[v] < k and v not in adjacency[u]
            )
            if needed > available:
                return False
        return True

    def extend(node: int) -> None:
        while node < n and degrees[node] == k:
            node += 1
        if node == n:
            adjacency_lists = [sorted(a) for a in adjacency]
            if _is_connected_edge_set(n, adjacency_lists):
                key = _cheap_invariant(n, adjacency_lists)
                bucket = buckets.setdefault(key, [])
                if not any(
                    _isomorphic(n, adjacency_lists, other) for other in bucket
                ):
                    bucket.append(adjacency_lists)
                    representatives.append(
                        Graph(nodes=range(n), edges=list(edges))
                    )
            return
        needed = k - degrees[node]
        candidates = [
            v
            for v in range(node + 1, n)
            if degrees[v] < k and v not in adjacency[node]
        ]
        for chosen in combinations(candidates, needed):
            for v in chosen:
                degrees[node] += 1
                degrees[v] += 1
                adjacency[node].append(v)
                adjacency[v].append(node)
                edges.append((node, v))
            if remaining_feasible(node + 1):
                extend(node + 1)
            for v in reversed(chosen):
                degrees[node] -= 1
                degrees[v] -= 1
                adjacency[node].pop()
                adjacency[v].pop()
                edges.pop()

    extend(0)
    for index, graph in enumerate(representatives):
        graph.name = f"regular({k},{n})#{index}"
    return representatives


def lhg_census(n: int, k: int) -> Tuple[List[Graph], List[Graph]]:
    """Classify every connected k-regular graph on (n, k) as LHG or not.

    Returns ``(lhgs, non_lhgs)``.  Because the candidates are k-regular,
    edge counts are automatically Harary-minimal; the classification
    hinges on connectivity and the diameter budget.
    """
    from repro.core.properties import is_lhg

    lhgs: List[Graph] = []
    non_lhgs: List[Graph] = []
    for graph in enumerate_k_regular_graphs(n, k):
        (lhgs if is_lhg(graph, k) else non_lhgs).append(graph)
    return lhgs, non_lhgs


def construction_reaches(graph: Graph, k: int) -> bool:
    """Does the tree-pasting construction family produce this graph?

    Checked structurally: the pasted graphs of this library for a
    k-regular size are exactly the JD/K-TREE/K-DIAMOND outputs, so we
    compare against each feasible builder's output via exact isomorphism
    (canonical forms — the graphs here are tiny).
    """
    from repro.core.existence import RULES, build_lhg, exists

    n = graph.number_of_nodes()
    target = _canonical_form(
        n, frozenset(_as_int_edges(graph))
    )
    for rule in RULES:
        if not exists(n, k, rule):
            continue
        candidate, _ = build_lhg(n, k, rule=rule)
        relabelled = _to_integer_graph(candidate)
        if _canonical_form(n, frozenset(_as_int_edges(relabelled))) == target:
            return True
    return False


def _to_integer_graph(graph: Graph) -> Graph:
    mapping = {label: i for i, label in enumerate(sorted(graph.nodes(), key=repr))}
    return graph.relabeled(mapping)


def _as_int_edges(graph: Graph) -> Iterator[Tuple[int, int]]:
    mapping = {label: i for i, label in enumerate(sorted(graph.nodes(), key=repr))}
    for u, v in graph.iter_edges():
        yield tuple(sorted((mapping[u], mapping[v])))
