"""The tree skeleton shared by every LHG construction.

Jenkins & Demers' construction — and the follow-on K-TREE / K-DIAMOND
constraints that generalise it — all describe the same object: an
abstract tree ``T`` whose **interior nodes are replicated k times** (one
copy per tree T_1 … T_k) and whose **leaves are pasted** across the
copies.  This module models that abstract tree:

* the root has ``k`` child slots, every other interior has ``k − 1``;
* a *leaf slot* hangs off an interior and is realised either as one
  **shared** graph node (a leaf of all k trees — JD rule) or as an
  **unshared** clique of k graph nodes (K-DIAMOND rule 4);
* interiors *just above the leaves* may carry extra **added** leaf slots
  (JD: ≤ 2 each on ≤ k non-root interiors; K-TREE: ≤ 2k−3 each;
  K-DIAMOND: ≤ k−2 each);
* growth happens by **converting** the oldest leaf slot into a new
  interior with k − 1 fresh leaf slots, which keeps the tree
  height-balanced (leaves always live on at most two adjacent depths).

The node-count arithmetic that all existence theorems rest on:

* interiors contribute ``k`` graph nodes each (one per copy),
* shared leaf slots contribute 1, unshared slots contribute ``k``,
* hence the base tree (one root, k shared leaves) yields n = 2k, and a
  conversion adds ``k − 1`` interior-copy nodes plus ``k − 1`` fresh
  shared leaves = 2(k − 1) nodes.

:func:`paste_copies` turns a schema into the actual
:class:`~repro.graphs.graph.Graph` plus a
:class:`~repro.core.certificates.ConstructionCertificate`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import ConstructionError

SHARED = "shared"
UNSHARED = "unshared"


@dataclass
class Interior:
    """One interior node of the abstract tree ``T``.

    Attributes
    ----------
    id:
        Dense integer id; 0 is the root.
    parent:
        Parent interior id, or ``None`` for the root.
    depth:
        Root is depth 0.
    interior_children:
        Ids of children that are interiors.
    leaf_children:
        Ids of structural leaf slots currently hanging here.
    added_leaf_children:
        Ids of extra leaf slots attached beyond the structural quota.
    """

    id: int
    parent: Optional[int]
    depth: int
    interior_children: List[int] = field(default_factory=list)
    leaf_children: List[int] = field(default_factory=list)
    added_leaf_children: List[int] = field(default_factory=list)

    @property
    def child_count(self) -> int:
        """Total children (interiors + structural leaves + added leaves)."""
        return (
            len(self.interior_children)
            + len(self.leaf_children)
            + len(self.added_leaf_children)
        )

    @property
    def is_above_leaves(self) -> bool:
        """True when at least one child is a leaf slot."""
        return bool(self.leaf_children) or bool(self.added_leaf_children)


@dataclass
class LeafSlot:
    """One leaf slot of the abstract tree.

    ``kind`` is :data:`SHARED` (one pasted graph node) or
    :data:`UNSHARED` (a k-clique, one member per tree copy);
    ``added`` marks slots attached beyond the structural k − 1 quota.
    """

    id: int
    parent: int
    depth: int
    kind: str = SHARED
    added: bool = False


class TreeSchema:
    """A mutable abstract construction tree for connectivity level ``k``.

    The constructor builds the base schema — a root with ``k`` shared
    leaf slots — whose pasted graph is the smallest LHG (n = 2k, the
    complete bipartite K_{k,k}).  Grow it with :meth:`convert_next_leaf`,
    :meth:`add_extra_leaf` and :meth:`mark_unshared`, then materialise
    with :func:`paste_copies`.

    Raises
    ------
    ConstructionError
        If ``k < 2`` — with one tree copy and no pasting there is no
        construction (k = 1 "LHGs" are just trees).
    """

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ConstructionError(f"tree schema needs k >= 2, got k={k}")
        self.k = k
        self.interiors: Dict[int, Interior] = {}
        self.leaves: Dict[int, LeafSlot] = {}
        self._next_interior = 0
        self._next_leaf = 0
        self._conversion_queue: Deque[int] = deque()
        root = self._new_interior(parent=None, depth=0)
        for _ in range(k):
            self._new_leaf(root.id)

    # ------------------------------------------------------------------
    # Internal allocation
    # ------------------------------------------------------------------

    def _new_interior(self, parent: Optional[int], depth: int) -> Interior:
        node = Interior(id=self._next_interior, parent=parent, depth=depth)
        self._next_interior += 1
        self.interiors[node.id] = node
        if parent is not None:
            self.interiors[parent].interior_children.append(node.id)
        return node

    def _new_leaf(self, parent: int, added: bool = False) -> LeafSlot:
        leaf = LeafSlot(
            id=self._next_leaf,
            parent=parent,
            depth=self.interiors[parent].depth + 1,
            added=added,
        )
        self._next_leaf += 1
        self.leaves[leaf.id] = leaf
        holder = self.interiors[parent]
        if added:
            holder.added_leaf_children.append(leaf.id)
        else:
            holder.leaf_children.append(leaf.id)
            self._conversion_queue.append(leaf.id)
        return leaf

    # ------------------------------------------------------------------
    # Growth operations
    # ------------------------------------------------------------------

    def convert_next_leaf(self) -> int:
        """Convert the oldest structural shared leaf into an interior node.

        The new interior receives ``k − 1`` fresh shared leaf slots.
        FIFO order guarantees leaves only ever occupy two adjacent
        depths, i.e. the tree stays height-balanced (rule 3a / 5a).

        Returns the id of the new interior.

        Raises
        ------
        ConstructionError
            If no convertible leaf remains (cannot happen while k ≥ 3,
            every conversion enqueues k − 1 ≥ 2 replacements) or the
            front leaf is no longer shared/structural.
        """
        while self._conversion_queue:
            leaf_id = self._conversion_queue.popleft()
            leaf = self.leaves.get(leaf_id)
            if leaf is None or leaf.kind != SHARED or leaf.added:
                continue
            parent = self.interiors[leaf.parent]
            parent.leaf_children.remove(leaf_id)
            del self.leaves[leaf_id]
            node = self._new_interior(parent=parent.id, depth=leaf.depth)
            for _ in range(self.k - 1):
                self._new_leaf(node.id)
            return node.id
        raise ConstructionError("no convertible shared leaf slot remains")

    def add_extra_leaf(self, parent_id: Optional[int] = None) -> int:
        """Attach one *added* shared leaf to a node just above the leaves.

        Parameters
        ----------
        parent_id:
            Target interior; defaults to the first interior (in id
            order) that already has a structural leaf child.

        Returns the new leaf id.

        Raises
        ------
        ConstructionError
            If the chosen interior has no leaf children (added leaves may
            only hang "just above the leaves" per rules 3d / 5d).
        """
        if parent_id is None:
            parent_id = next(
                (i.id for i in self.interiors.values() if i.leaf_children), None
            )
            if parent_id is None:
                raise ConstructionError("no interior sits just above the leaves")
        holder = self.interiors[parent_id]
        if not holder.leaf_children:
            raise ConstructionError(
                f"interior {parent_id} has no leaf children; added leaves must "
                f"attach just above the leaves"
            )
        return self._new_leaf(parent_id, added=True).id

    def mark_unshared(self, leaf_id: Optional[int] = None) -> int:
        """Turn a shared leaf slot into an unshared k-clique slot (rule 4).

        Parameters
        ----------
        leaf_id:
            Slot to convert; defaults to the youngest structural shared
            leaf (deepest level), which keeps the shallow levels available
            for later conversions.

        Returns the id of the modified slot.

        Raises
        ------
        ConstructionError
            If the slot does not exist or is not a shared slot.
        """
        if leaf_id is None:
            candidates = [
                l.id
                for l in self.leaves.values()
                if l.kind == SHARED and not l.added
            ]
            if not candidates:
                raise ConstructionError("no shared leaf slot to mark unshared")
            leaf_id = max(candidates)
        leaf = self.leaves.get(leaf_id)
        if leaf is None:
            raise ConstructionError(f"leaf slot {leaf_id} does not exist")
        if leaf.kind != SHARED:
            raise ConstructionError(f"leaf slot {leaf_id} is already unshared")
        leaf.kind = UNSHARED
        return leaf_id

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def interior_count(self) -> int:
        """Number of interior nodes ``m`` of the abstract tree."""
        return len(self.interiors)

    @property
    def shared_leaf_count(self) -> int:
        """Shared leaf slots, including added ones."""
        return sum(1 for l in self.leaves.values() if l.kind == SHARED)

    @property
    def unshared_leaf_count(self) -> int:
        """Unshared (k-clique) leaf slots."""
        return sum(1 for l in self.leaves.values() if l.kind == UNSHARED)

    @property
    def added_leaf_count(self) -> int:
        """Added leaf slots (beyond the structural k − 1 quota)."""
        return sum(1 for l in self.leaves.values() if l.added)

    def node_count(self) -> int:
        """Number of graph nodes the pasted k-copy graph will have."""
        return (
            self.k * self.interior_count
            + self.shared_leaf_count
            + self.k * self.unshared_leaf_count
        )

    def height(self) -> int:
        """Height of the abstract tree (leaf slots included)."""
        return max(l.depth for l in self.leaves.values())

    def is_height_balanced(self) -> bool:
        """True when all leaf slots live on at most two adjacent depths."""
        depths = {l.depth for l in self.leaves.values()}
        return max(depths) - min(depths) <= 1

    def interiors_above_leaves(self, include_root: bool = True) -> List[int]:
        """Ids of interiors with at least one structural leaf child."""
        return [
            i.id
            for i in sorted(self.interiors.values(), key=lambda x: x.id)
            if i.leaf_children and (include_root or i.parent is not None)
        ]

    def leaf_parent(self, leaf_id: int) -> int:
        """Return the interior id a leaf slot hangs off."""
        return self.leaves[leaf_id].parent

    def tree_path_to_root(self, interior_id: int) -> List[int]:
        """Return interior ids from ``interior_id`` up to and including the root."""
        path = [interior_id]
        while True:
            parent = self.interiors[path[-1]].parent
            if parent is None:
                return path
            path.append(parent)

    def describe(self) -> str:
        """One-line summary used in certificates and error messages."""
        return (
            f"TreeSchema(k={self.k}, interiors={self.interior_count}, "
            f"shared={self.shared_leaf_count}, unshared={self.unshared_leaf_count}, "
            f"added={self.added_leaf_count}, height={self.height()}, "
            f"n={self.node_count()})"
        )


def grown_schema(k: int, conversions: int) -> TreeSchema:
    """Return a base schema grown by ``conversions`` leaf conversions.

    Node-count arithmetic: the result pastes to n = 2k + 2·conversions·(k−1).

    Raises
    ------
    ConstructionError
        If ``k == 2`` and conversions would exhaust the two leaf slots
        — impossible: for k = 2 each conversion replaces one leaf with
        one leaf, so any number of conversions is fine; the error can
        only arise from an internal inconsistency.
    """
    schema = TreeSchema(k)
    for _ in range(conversions):
        schema.convert_next_leaf()
    return schema


# ----------------------------------------------------------------------
# Pasting the k copies into a concrete graph
# ----------------------------------------------------------------------

InteriorLabel = Tuple[str, int, int]  # ("T", copy, interior_id)
SharedLabel = Tuple[str, int]  # ("L", leaf_id)
UnsharedLabel = Tuple[str, int, int]  # ("U", leaf_id, copy)


def interior_label(copy: int, interior_id: int) -> InteriorLabel:
    """Graph label of interior ``interior_id`` in tree copy ``copy``."""
    return ("T", copy, interior_id)


def shared_leaf_label(leaf_id: int) -> SharedLabel:
    """Graph label of the single pasted node of a shared leaf slot."""
    return ("L", leaf_id)


def unshared_leaf_label(leaf_id: int, copy: int) -> UnsharedLabel:
    """Graph label of clique member ``copy`` of an unshared leaf slot."""
    return ("U", leaf_id, copy)


def paste_copies(schema: TreeSchema):
    """Materialise the k pasted tree copies as a concrete graph.

    Edge rules (exactly the paper's):

    * each copy replicates every interior–interior tree edge;
    * a **shared** leaf slot becomes one node adjacent to its parent's
      copy in *every* tree (rule: "each leaf is a leaf of all k trees");
    * an **unshared** slot becomes a k-clique whose member ``i`` is
      adjacent to the parent's copy in tree ``i`` (K-DIAMOND rule 4).

    Returns
    -------
    (Graph, ConstructionCertificate)
        The graph and a certificate recording the schema structure, from
        which the verifier and the disjoint-path router work.
    """
    from repro.core.certificates import ConstructionCertificate
    from repro.graphs.graph import Graph

    k = schema.k
    graph = Graph(name=f"lhg(k={k}, n={schema.node_count()})")

    for copy in range(k):
        for interior in schema.interiors.values():
            graph.add_node(interior_label(copy, interior.id))
    for leaf in schema.leaves.values():
        if leaf.kind == SHARED:
            graph.add_node(shared_leaf_label(leaf.id))
        else:
            for copy in range(k):
                graph.add_node(unshared_leaf_label(leaf.id, copy))

    for copy in range(k):
        for interior in schema.interiors.values():
            if interior.parent is not None:
                graph.add_edge(
                    interior_label(copy, interior.parent),
                    interior_label(copy, interior.id),
                )
    for leaf in schema.leaves.values():
        if leaf.kind == SHARED:
            label = shared_leaf_label(leaf.id)
            for copy in range(k):
                graph.add_edge(interior_label(copy, leaf.parent), label)
        else:
            members = [unshared_leaf_label(leaf.id, copy) for copy in range(k)]
            for copy, member in enumerate(members):
                graph.add_edge(interior_label(copy, leaf.parent), member)
            for i in range(k):
                for j in range(i + 1, k):
                    graph.add_edge(members[i], members[j])

    certificate = ConstructionCertificate.from_schema(schema)
    return graph, certificate
