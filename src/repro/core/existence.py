"""Existence/regularity characteristic functions and the builder façade.

The follow-on literature frames construction coverage through two
boolean characteristic functions, which this module implements for all
three rules:

* ``EX_Π(n, k)`` — does a graph satisfying constraint Π exist for the
  pair?  (:func:`exists`)
* ``REG_Π(n, k)`` — does a **k-regular** such graph exist?
  (:func:`regular_exists`)

:func:`build_lhg` is the user-facing façade: it picks the best rule for
a pair — the target paper's Jenkins–Demers rule when it applies, K-TREE
otherwise, or K-DIAMOND when a regular graph is requested and possible —
and returns the graph with its certificate.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConstructionError, InfeasiblePairError
from repro.core.jenkins_demers import (
    is_jd_constructible,
    jd_regular_sizes,
    jenkins_demers_graph,
)
from repro.core.kdiamond import (
    kdiamond_exists,
    kdiamond_graph,
    kdiamond_regular_exists,
)
from repro.core.ktree import ktree_exists, ktree_graph, ktree_regular_exists

RULES = ("jenkins-demers", "k-tree", "k-diamond")


def exists(n: int, k: int, rule: str = "k-tree") -> bool:
    """The EX_Π characteristic function for the given rule.

    Raises
    ------
    ConstructionError
        If ``rule`` is not one of :data:`RULES`.
    """
    if rule == "jenkins-demers":
        return is_jd_constructible(n, k)
    if rule == "k-tree":
        return ktree_exists(n, k)
    if rule == "k-diamond":
        return kdiamond_exists(n, k)
    raise ConstructionError(f"unknown rule {rule!r}; expected one of {RULES}")


def regular_exists(n: int, k: int, rule: str = "k-diamond") -> bool:
    """The REG_Π characteristic function for the given rule.

    Raises
    ------
    ConstructionError
        If ``rule`` is not one of :data:`RULES`.
    """
    if rule == "jenkins-demers":
        # The JD rule is regular exactly at its extra-free clean sizes.
        return is_jd_constructible(n, k) and n in jd_regular_sizes(k, n)
    if rule == "k-tree":
        return ktree_regular_exists(n, k)
    if rule == "k-diamond":
        return kdiamond_regular_exists(n, k)
    raise ConstructionError(f"unknown rule {rule!r}; expected one of {RULES}")


def build_lhg(n: int, k: int, rule: str = "auto", prefer_regular: bool = True):
    """Build an LHG for (n, k), choosing the construction rule.

    Parameters
    ----------
    rule:
        ``"auto"`` (default) or one of :data:`RULES`.  Auto policy:

        1. if ``prefer_regular`` and a k-regular graph exists only via
           K-DIAMOND, use K-DIAMOND;
        2. else use the target paper's Jenkins–Demers rule when it can
           build the pair;
        3. else fall back to K-TREE (always succeeds for n ≥ 2k).
    prefer_regular:
        Whether the auto policy should trade the JD rule for K-DIAMOND
        to gain k-regularity (fewer edges, cheaper flooding).

    Returns
    -------
    (Graph, ConstructionCertificate)

    Raises
    ------
    InfeasiblePairError
        If no rule can build the pair (n < 2k or k < 2), or the named
        rule cannot.
    ConstructionError
        If ``rule`` is not recognised.

    Examples
    --------
    >>> graph, cert = build_lhg(8, 3)
    >>> graph.number_of_nodes(), cert.rule
    (8, 'k-diamond')
    """
    if rule == "auto":
        if k < 2 or n < 2 * k:
            raise InfeasiblePairError(
                n, k, "auto", f"no LHG construction exists below n=2k={2 * k} or k<2"
            )
        jd_ok = is_jd_constructible(n, k)
        if prefer_regular and kdiamond_regular_exists(n, k):
            if not (jd_ok and regular_exists(n, k, "jenkins-demers")):
                return kdiamond_graph(n, k)
        if jd_ok:
            return jenkins_demers_graph(n, k)
        return ktree_graph(n, k)
    if rule == "jenkins-demers":
        return jenkins_demers_graph(n, k)
    if rule == "k-tree":
        return ktree_graph(n, k)
    if rule == "k-diamond":
        return kdiamond_graph(n, k)
    raise ConstructionError(f"unknown rule {rule!r}; expected 'auto' or {RULES}")


def explain_construction(n: int, k: int, rule: str = "auto") -> List[str]:
    """Return a human-readable step list for building the (n, k) LHG.

    Narrates the actual plan the chosen rule computes: the K_{k,k}
    base, each batch of leaf→interior conversions, and the residue
    handling (added leaves / unshared cliques / paired extras).

    Raises
    ------
    InfeasiblePairError / ConstructionError
        As :func:`build_lhg` for the same arguments.
    """
    _, certificate = build_lhg(n, k, rule=rule)
    chosen = certificate.rule
    steps = [
        f"target: an LHG for (n={n}, k={k}) via the {chosen!r} rule",
        f"base: {k} tree copies pasted at {k} shared leaves "
        f"(K_{{{k},{k}}}, {2 * k} nodes)",
    ]
    conversions = certificate.interior_count - 1
    if conversions:
        steps.append(
            f"grow: convert {conversions} leaves into interior nodes "
            f"(each adds k-1={k - 1} interior copies and k-1 fresh shared "
            f"leaves: +{2 * (k - 1)} nodes per conversion), keeping the "
            f"tree height-balanced (final height {certificate.height()})"
        )
    unshared = len(certificate.unshared_leaves)
    if unshared:
        steps.append(
            f"residue: realise {unshared} leaf slot(s) as unshared "
            f"{k}-cliques (one member per copy: +{k - 1} nodes each, "
            f"every member keeps degree k)"
        )
    added = sum(1 for leaf in certificate.leaves.values() if leaf.added)
    if added:
        steps.append(
            f"residue: attach {added} added shared leaf/leaves to a node "
            f"just above the leaves (+1 node each; host degree exceeds k)"
        )
    steps.append(
        f"result: {certificate.expected_node_count()} nodes, "
        f"{certificate.expected_edge_count()} edges, diameter bounded by "
        f"2*(height+1)+1 = {2 * (certificate.height() + 1) + 1}"
    )
    return steps


def coverage_table(k: int, max_n: int) -> List[Tuple[int, bool, bool, bool]]:
    """Per-n existence of the three rules: rows ``(n, jd, ktree, kdiamond)``.

    The substrate of coverage experiment T4.
    """
    return [
        (
            n,
            is_jd_constructible(n, k),
            ktree_exists(n, k),
            kdiamond_exists(n, k),
        )
        for n in range(2 * k, max_n + 1)
    ]


def regularity_table(k: int, max_n: int) -> List[Tuple[int, bool, bool, bool]]:
    """Per-n regular-existence rows ``(n, jd, ktree, kdiamond)`` (exp. T5)."""
    return [
        (
            n,
            regular_exists(n, k, "jenkins-demers"),
            ktree_regular_exists(n, k),
            kdiamond_regular_exists(n, k),
        )
        for n in range(2 * k, max_n + 1)
    ]
