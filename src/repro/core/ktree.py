"""K-TREE constraint builder (extension module, follow-on literature).

**Scope note.** K-TREE is *not* part of the target Jenkins–Demers paper;
it is the generalisation introduced by the follow-on work (Baldoni et
al.) to close the JD rule's coverage gaps.  It is included here, clearly
fenced off, because the benchmark suite needs a constructor for the
(n, k) pairs the JD rule misses (experiment T4) and because every
JD-buildable graph also satisfies K-TREE, making it a convenient
superset validator.

The constraint relaxes exactly one JD rule: nodes just above the leaves
(the root included) may carry up to **2k − 3 added leaves each**, singly
rather than in pairs.  Since a conversion step adds 2(k − 1) = 2k − 2
nodes, a slack of 2k − 3 per host closes every gap:

    EX_K-TREE(n, k) = true  ⇔  n ≥ 2k
    REG_K-TREE(n, k) = true ⇔  n = 2k + 2α(k − 1)

(the regular points coincide with the JD rule's clean sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import InfeasiblePairError
from repro.core.tree_schema import TreeSchema, grown_schema, paste_copies

RULE_NAME = "k-tree"


@dataclass(frozen=True)
class KTreePlan:
    """Build plan under the K-TREE constraint: α conversions + j added leaves."""

    n: int
    k: int
    conversions: int
    added_leaves: int


def ktree_exists(n: int, k: int) -> bool:
    """The EX_K-TREE characteristic function: true iff n ≥ 2k (for k ≥ 2)."""
    return k >= 2 and n >= 2 * k


def ktree_regular_exists(n: int, k: int) -> bool:
    """The REG_K-TREE characteristic function.

    True exactly at the clean sizes n = 2k + 2α(k − 1): any added leaf
    pushes its host's degree above k, breaking regularity.
    """
    if not ktree_exists(n, k):
        return False
    return (n - 2 * k) % (2 * (k - 1)) == 0


def ktree_plan(n: int, k: int) -> KTreePlan:
    """Compute the (unique maximal-conversions) K-TREE plan for (n, k).

    Raises
    ------
    InfeasiblePairError
        If n < 2k or k < 2 — K-TREE has no other gaps.
    """
    if k < 2:
        raise InfeasiblePairError(n, k, RULE_NAME, "needs k >= 2")
    if n < 2 * k:
        raise InfeasiblePairError(
            n, k, RULE_NAME, f"minimum size for connectivity k={k} is n=2k={2 * k}"
        )
    step = 2 * (k - 1)
    conversions = (n - 2 * k) // step
    added = (n - 2 * k) % step
    # added is in 0 .. 2k-3, within the per-host quota of rule 3d, so a
    # single host suffices.
    return KTreePlan(n=n, k=k, conversions=conversions, added_leaves=added)


def ktree_schema(n: int, k: int) -> TreeSchema:
    """Build the abstract K-TREE tree for (n, k)."""
    plan = ktree_plan(n, k)
    schema = grown_schema(k, plan.conversions)
    if plan.added_leaves:
        host = schema.interiors_above_leaves(include_root=True)[0]
        for _ in range(plan.added_leaves):
            schema.add_extra_leaf(host)
    assert schema.node_count() == n, schema.describe()
    return schema


def ktree_graph(n: int, k: int):
    """Build an LHG satisfying the K-TREE constraint for any n ≥ 2k.

    Returns ``(Graph, ConstructionCertificate)``.

    Raises
    ------
    InfeasiblePairError
        If n < 2k or k < 2.
    """
    schema = ktree_schema(n, k)
    graph, certificate = paste_copies(schema)
    graph.name = f"ktree({n},{k})"
    return graph, certificate.with_rule(RULE_NAME)


def ktree_regular_sizes(k: int, max_n: int) -> List[int]:
    """All n ≤ max_n where the K-TREE construction is k-regular."""
    sizes = []
    n = 2 * k
    while n <= max_n:
        sizes.append(n)
        n += 2 * (k - 1)
    return sizes


def satisfies_ktree(certificate) -> bool:
    """Check a construction certificate against the K-TREE rule set.

    Verifies: all leaves shared (rule 2); root has k children (3b);
    other interiors have 0 or k−1 structural children (3c); added leaves
    only on hosts just above the leaves, at most 2k−3 each (3d); the
    tree is height-balanced (3a).
    """
    k = certificate.k
    if any(l.kind != "shared" for l in certificate.leaves.values()):
        return False
    depths = {l.depth for l in certificate.leaves.values()}
    if max(depths) - min(depths) > 1:
        return False
    for record in certificate.interiors.values():
        structural = len(record.interior_children) + len(record.leaf_children)
        added = len(record.added_leaf_children)
        if record.parent is None:
            if structural != k:
                return False
        else:
            if structural not in (0, k - 1):
                return False
        if added:
            if not record.leaf_children:
                return False
            if added > 2 * k - 3:
                return False
    return True
