"""High-level experiment runners: one call = one simulated dissemination.

The unit of this module is the :class:`ExperimentSpec` — a frozen,
declarative description of one run (protocol name, topology, source,
seed, parameters) — and the single dispatcher
:func:`run_experiment(spec) <run_experiment>` that executes it and
returns a :class:`RunSummary`.  One spec type instead of a dozen
near-identical runner signatures is what lets the execution engine
(:mod:`repro.exec`) fan a grid of runs across worker processes: a spec
is plain data, a cell is ``run_experiment`` applied to it, and the
result is a pure function of the spec.

The historical per-protocol runners (:func:`run_flood`,
:func:`run_gossip`, :func:`run_treecast`, :func:`run_unicast`,
:func:`run_echo`, :func:`run_reliable_flood`, :func:`run_arq_flood`, …)
remain the convenient call-site API — each is now a thin shim that
builds a spec and delegates to the dispatcher, returning exactly what
it always returned.  They are the API the benchmarks, examples and
integration tests share, so every number in EXPERIMENTS.md traces back
to one of these runners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import repro.obs as obs
from repro.errors import SimulationError
from repro.flooding.failures import FailureSchedule, apply_schedule, survivors
from repro.flooding.faults import FaultModel
from repro.flooding.metrics import FloodResult, ResultAggregate, reachable_from
from repro.flooding.network import LatencyModel, Network
from repro.flooding.protocols.flood import FloodProtocol
from repro.flooding.protocols.gossip import PushGossipProtocol
from repro.flooding.protocols.treecast import TreeCastProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.graph import Graph

NodeId = Hashable

# Generous ceiling: flooding sends < 2m messages, gossip fanout*rounds*n.
_EVENT_BUDGET_FACTOR = 50


def _event_budget(graph) -> int:
    from repro.graphs.oracle import oracle_num_edges

    return _EVENT_BUDGET_FACTOR * (
        graph.num_nodes() + oracle_num_edges(graph) + 100
    )


def _freeze_items(value: Any) -> Tuple[Tuple[str, Any], ...]:
    """Normalize a mapping / item-iterable to a sorted item tuple."""
    if isinstance(value, Mapping):
        items = value.items()
    else:
        items = tuple(value)
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment run.

    Attributes
    ----------
    protocol:
        Registered experiment name (see :func:`experiment_names`), e.g.
        ``"flood"``, ``"gossip"``, ``"arq-flood"``.
    graph:
        The topology to run on.
    source:
        Originating node (protocol-specific meaning; ``None`` for
        experiments that derive it from parameters, e.g. unicast takes
        its source from the routed path).
    seed:
        Protocol-level randomness seed (gossip peer sampling etc.).
    failures / latency / loss_rate / loss_seed / fault_model:
        The adversary and network model, shared by every protocol.
    params:
        Protocol-specific parameters as a sorted item tuple (mappings
        passed to the constructor are normalized automatically), e.g.
        ``{"fanout": 3, "rounds": 12}`` for gossip.
    """

    protocol: str
    graph: Graph
    source: Optional[NodeId] = None
    seed: int = 0
    failures: Optional[FailureSchedule] = None
    latency: Optional[LatencyModel] = None
    loss_rate: float = 0.0
    loss_seed: int = 0
    fault_model: Optional[FaultModel] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _freeze_items(self.params))

    def param(self, name: str, default: Any = None) -> Any:
        """Look one protocol-specific parameter up."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The protocol-specific parameters as a fresh dict."""
        return dict(self.params)

    def with_params(self, **overrides: Any) -> "ExperimentSpec":
        """A copy of this spec with parameters merged in."""
        merged = self.params_dict
        merged.update(overrides)
        return ExperimentSpec(
            protocol=self.protocol,
            graph=self.graph,
            source=self.source,
            seed=self.seed,
            failures=self.failures,
            latency=self.latency,
            loss_rate=self.loss_rate,
            loss_seed=self.loss_seed,
            fault_model=self.fault_model,
            params=merged,
        )


@dataclass(frozen=True)
class RunSummary:
    """What one executed spec produced.

    ``result`` is the :class:`FloodResult` for coverage-style protocols
    (``None`` for point-to-point and report-style experiments);
    ``metrics`` carries protocol-specific extras as a sorted item tuple
    (``delivered_at`` and ``hops`` for unicast, ``completed`` and
    ``aggregate`` for echo, …).  Summaries are plain, comparable data —
    two identical specs must yield equal summaries, which is what the
    parallel-determinism tests pin down.
    """

    protocol: str
    result: Optional[FloodResult] = None
    metrics: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "metrics", _freeze_items(self.metrics))

    def metric(self, name: str, default: Any = None) -> Any:
        """Look one protocol-specific metric up."""
        for key, value in self.metrics:
            if key == name:
                return value
        return default

    @property
    def metrics_dict(self) -> Dict[str, Any]:
        """The metrics as a fresh dict."""
        return dict(self.metrics)


# ----------------------------------------------------------------------
# Dispatch machinery
# ----------------------------------------------------------------------

# name -> handler(spec) -> (RunSummary, raw protocol/report object)
_HANDLERS: Dict[str, Callable[[ExperimentSpec], Tuple[RunSummary, Any]]] = {}


def _handler(name: str):
    def register(fn):
        _HANDLERS[name] = fn
        return fn

    return register


def experiment_names() -> Tuple[str, ...]:
    """Every protocol name :func:`run_experiment` can dispatch."""
    return tuple(sorted(_HANDLERS))


def run_experiment(spec: ExperimentSpec) -> RunSummary:
    """Execute one :class:`ExperimentSpec` and summarize it.

    This is the single entry point the execution engine fans out:
    ``pool.map(run_experiment, specs)`` runs a whole grid.

    Raises
    ------
    SimulationError
        For unknown protocol names, vacuous setups (source crashed at
        start) or exceeded event budgets.
    """
    summary, _ = _execute(spec)
    return summary


def _execute(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    handler = _HANDLERS.get(spec.protocol)
    if handler is None:
        known = ", ".join(experiment_names())
        raise SimulationError(
            f"unknown experiment protocol {spec.protocol!r}; known: {known}"
        )
    with obs.span(
        "protocol-run",
        protocol=spec.protocol,
        n=spec.graph.num_nodes(),
        seed=spec.seed,
    ):
        return handler(spec)


def _schedule(spec: ExperimentSpec) -> FailureSchedule:
    return spec.failures or FailureSchedule()


def _guard_source(spec: ExperimentSpec, schedule: FailureSchedule, word: str) -> None:
    if any(c.node == spec.source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError(f"the {word} source is crashed at start")


def _network(
    spec: ExperimentSpec,
    simulator: Simulator,
    schedule: Optional[FailureSchedule],
    latency: bool = True,
    loss: bool = True,
    faults: bool = True,
) -> Network:
    """Build the network a spec describes and apply its schedule."""
    network = Network(
        spec.graph,
        simulator,
        latency=spec.latency if latency else None,
        loss_rate=spec.loss_rate if loss else 0.0,
        loss_seed=spec.loss_seed if loss else 0,
        fault_model=spec.fault_model if faults else None,
    )
    if schedule is not None:
        apply_schedule(schedule, network, simulator)
    return network


def summarize_run(
    protocol_name: str,
    graph: Graph,
    source: NodeId,
    schedule: FailureSchedule,
    network: Network,
) -> FloodResult:
    """Condense one finished simulation into a :class:`FloodResult`.

    The coverage denominator is the survivor component: nodes reachable
    from ``source`` in the topology left by the schedule's *final*
    state (crashed-and-recovered nodes count as survivors).  Shared by
    the runners below and the chaos campaign engine
    (:mod:`repro.robustness`).
    """
    obs.record_network(network)
    alive_graph = survivors(graph, schedule)
    reachable = reachable_from(alive_graph, source)
    covered = {
        node for node in network.delivery_times if network.is_alive(node)
    }
    times = {
        node: t for node, t in network.delivery_times.items() if node in covered
    }
    completion = max(times.values()) if times else None
    return FloodResult(
        protocol=protocol_name,
        n=graph.number_of_nodes(),
        alive=alive_graph.number_of_nodes(),
        reachable=len(reachable),
        covered=len(covered),
        messages=network.stats.messages_sent,
        completion_time=completion,
        delivery_times=times,
    )


def _coverage_summary(
    spec: ExperimentSpec,
    name: str,
    schedule: FailureSchedule,
    network: Network,
    protocol: Any,
) -> Tuple[RunSummary, Any]:
    result = summarize_run(name, spec.graph, spec.source, schedule, network)
    return RunSummary(protocol=spec.protocol, result=result), protocol


# ----------------------------------------------------------------------
# Experiment handlers (one per protocol name)
# ----------------------------------------------------------------------


@_handler("flood")
def _exec_flood(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    schedule = _schedule(spec)
    _guard_source(spec, schedule, "flood")
    simulator = Simulator()
    network = _network(spec, simulator, schedule)
    protocol = FloodProtocol(network, spec.source)
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(max_events=_event_budget(spec.graph))
    return _coverage_summary(spec, "flood", schedule, network, protocol)


@_handler("gossip")
def _exec_gossip(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    schedule = _schedule(spec)
    _guard_source(spec, schedule, "gossip")
    fanout = spec.param("fanout", 2)
    rounds = spec.param("rounds", 16)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, faults=False)
    protocol = PushGossipProtocol(
        network, spec.source, fanout=fanout, rounds=rounds, seed=spec.seed
    )
    network.attach(protocol, start_nodes=spec.graph.nodes())
    simulator.run(max_events=_event_budget(spec.graph) * max(1, rounds))
    return _coverage_summary(spec, "gossip", schedule, network, protocol)


@_handler("treecast")
def _exec_treecast(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    schedule = _schedule(spec)
    _guard_source(spec, schedule, "treecast")
    simulator = Simulator()
    network = _network(spec, simulator, schedule, faults=False)
    protocol = TreeCastProtocol(network, spec.graph, spec.source)
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(max_events=_event_budget(spec.graph))
    return _coverage_summary(spec, "treecast", schedule, network, protocol)


@_handler("unicast")
def _exec_unicast(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.unicast import SourceRoutedUnicast

    schedule = _schedule(spec)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, loss=False, faults=False)
    protocol = SourceRoutedUnicast(network, spec.param("path"))
    network.attach(protocol, start_nodes=[protocol.source])
    simulator.run(max_events=_event_budget(spec.graph))
    summary = RunSummary(
        protocol=spec.protocol,
        metrics={
            "delivered_at": protocol.delivered_at,
            "hops": protocol.hops_taken,
        },
    )
    return summary, protocol


@_handler("redundant-unicast")
def _exec_redundant_unicast(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.unicast import RedundantUnicast

    schedule = _schedule(spec)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, loss=False, faults=False)
    protocol = RedundantUnicast(network, spec.param("paths"))
    network.attach(protocol, start_nodes=[protocol.source])
    simulator.run(max_events=_event_budget(spec.graph))
    summary = RunSummary(
        protocol=spec.protocol,
        metrics={
            "delivered_at": protocol.delivered_at,
            "copies": protocol.copies_received,
            "messages": protocol.messages_sent,
        },
    )
    return summary, protocol


@_handler("echo")
def _exec_echo(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.echo import EchoProtocol

    schedule = _schedule(spec)
    _guard_source(spec, schedule, "echo")
    simulator = Simulator()
    network = _network(spec, simulator, schedule, loss=False, faults=False)
    protocol = EchoProtocol(
        network,
        spec.source,
        value_of=spec.param("value_of", lambda node: 1),
        combine=spec.param("combine", lambda a, b: a + b),
    )
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(max_events=_event_budget(spec.graph))
    summary = RunSummary(
        protocol=spec.protocol,
        metrics={
            "completed": protocol.completed,
            "aggregate": protocol.aggregate,
        },
    )
    return summary, protocol


@_handler("reliable-flood")
def _exec_reliable_flood(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.reliable import ReliableFloodProtocol

    schedule = _schedule(spec)
    _guard_source(spec, schedule, "flood")
    max_retries = spec.param("max_retries", 8)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, latency=False)
    protocol = ReliableFloodProtocol(
        network,
        spec.source,
        retry_timeout=spec.param("retry_timeout", 3.0),
        max_retries=max_retries,
    )
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(max_events=_event_budget(spec.graph) * (max_retries + 2))
    return _coverage_summary(spec, "reliable-flood", schedule, network, protocol)


@_handler("arq-flood")
def _exec_arq_flood(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.arq import ArqProtocol
    from repro.flooding.protocols.reliable import ReliableFloodProtocol

    schedule = _schedule(spec)
    _guard_source(spec, schedule, "flood")
    max_retries = spec.param("max_retries", 10)
    inner_retries = spec.param("inner_retries", 8)
    simulator = Simulator()
    network = _network(spec, simulator, schedule)
    inner = ReliableFloodProtocol(
        network,
        spec.source,
        retry_timeout=spec.param("retry_timeout", 3.0),
        max_retries=inner_retries,
    )
    protocol = ArqProtocol(
        network,
        inner,
        base_timeout=spec.param("base_timeout", 2.5),
        backoff=spec.param("backoff", 2.0),
        max_timeout=spec.param("max_timeout", 16.0),
        max_retries=max_retries,
    )
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(
        max_events=_event_budget(spec.graph) * (max_retries + inner_retries + 4)
    )
    return _coverage_summary(spec, "arq-reliable-flood", schedule, network, protocol)


@_handler("broadcast-stream")
def _exec_broadcast_stream(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.flood import StreamFloodProtocol

    count = spec.param("count", 1)
    simulator = Simulator()
    network = _network(spec, simulator, None, loss=False, faults=False)
    protocol = StreamFloodProtocol(
        network, spec.source, count, interval=spec.param("interval", 0.0)
    )
    network.attach(protocol, start_nodes=[spec.source])
    simulator.run(max_events=_event_budget(spec.graph) * max(1, count))
    summary = RunSummary(
        protocol=spec.protocol,
        metrics={
            "makespan": protocol.makespan(),
            "fully_covered": protocol.fully_covered(
                spec.graph.number_of_nodes()
            ),
            "messages": network.stats.messages_sent,
        },
    )
    return summary, protocol


@_handler("failure-detection")
def _exec_failure_detection(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.heartbeat import HeartbeatProtocol

    crashed = tuple(spec.param("crashed", ()))
    crash_time = spec.param("crash_time", 0.0)
    schedule = FailureSchedule()
    for victim in crashed:
        schedule.crash(victim, time=crash_time)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, faults=False)
    protocol = HeartbeatProtocol(
        network,
        period=spec.param("period", 1.0),
        timeout=spec.param("timeout", 3.5),
        horizon=spec.param("horizon", 40.0),
    )
    network.attach(protocol)
    simulator.run(max_events=10_000_000)
    report = protocol.detection_report(set(crashed), crash_time)
    summary = RunSummary(protocol=spec.protocol, metrics={"report": report})
    return summary, report


@_handler("view-change")
def _exec_view_change(spec: ExperimentSpec) -> Tuple[RunSummary, Any]:
    from repro.flooding.protocols.viewchange import ViewChangeProtocol

    # insertion-ordered dedup: crash-event order must follow the spec,
    # not a set's hash order, so traces replay identically everywhere
    crashed = list(dict.fromkeys(spec.param("crashed", ())))
    crash_time = spec.param("crash_time", 0.0)
    if spec.source in crashed:
        raise SimulationError("coordinator fail-over is not modelled")
    schedule = FailureSchedule()
    for victim in crashed:
        schedule.crash(victim, time=crash_time)
    simulator = Simulator()
    network = _network(spec, simulator, schedule, loss=False, faults=False)
    protocol = ViewChangeProtocol(
        network,
        spec.source,
        period=spec.param("period", 1.0),
        timeout=spec.param("timeout", 3.5),
        decision_delay=spec.param("decision_delay", 2.0),
        horizon=spec.param("horizon", 60.0),
    )
    network.attach(protocol)
    simulator.run(max_events=20_000_000)
    report = protocol.convergence_report(set(crashed), crash_time)
    summary = RunSummary(protocol=spec.protocol, metrics={"report": report})
    return summary, report


# ----------------------------------------------------------------------
# Per-protocol runner shims (the historical convenience API)
# ----------------------------------------------------------------------


def run_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    fault_model: Optional[FaultModel] = None,
) -> FloodResult:
    """Flood ``graph`` from ``source`` under a failure schedule.

    Raises
    ------
    SimulationError
        If the source is scheduled to crash at time 0 (the experiment
        would be vacuous) or the event budget is exceeded.
    """
    spec = ExperimentSpec(
        protocol="flood",
        graph=graph,
        source=source,
        failures=failures,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
    )
    return run_experiment(spec).result


def run_gossip(
    graph: Graph,
    source: NodeId,
    fanout: int = 2,
    rounds: int = 16,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> FloodResult:
    """Push-gossip ``graph`` from ``source`` (probabilistic baseline)."""
    spec = ExperimentSpec(
        protocol="gossip",
        graph=graph,
        source=source,
        seed=seed,
        failures=failures,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        params={"fanout": fanout, "rounds": rounds},
    )
    return run_experiment(spec).result


def run_treecast(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> FloodResult:
    """Broadcast over a precomputed BFS spanning tree (fragile baseline)."""
    spec = ExperimentSpec(
        protocol="treecast",
        graph=graph,
        source=source,
        failures=failures,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
    )
    return run_experiment(spec).result


def run_unicast(
    graph: Graph,
    path,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
) -> Tuple[Optional[float], int]:
    """Send one source-routed unicast along ``path``.

    Returns ``(delivery_time, hops_taken)``; the time is ``None`` when a
    failure severed the route.
    """
    spec = ExperimentSpec(
        protocol="unicast",
        graph=graph,
        failures=failures,
        latency=latency,
        params={"path": path},
    )
    summary = run_experiment(spec)
    return summary.metric("delivered_at"), summary.metric("hops")


def run_redundant_unicast(
    graph: Graph,
    paths,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
) -> Tuple[Optional[float], int, int]:
    """Send one unicast along several disjoint paths simultaneously.

    Returns ``(first_delivery_time, copies_received, messages_sent)``.
    """
    spec = ExperimentSpec(
        protocol="redundant-unicast",
        graph=graph,
        failures=failures,
        latency=latency,
        params={"paths": paths},
    )
    summary = run_experiment(spec)
    return (
        summary.metric("delivered_at"),
        summary.metric("copies"),
        summary.metric("messages"),
    )


def run_failure_detection(
    graph: Graph,
    crashed,
    crash_time: float,
    period: float = 1.0,
    timeout: float = 3.5,
    horizon: float = 40.0,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
):
    """Run the heartbeat detector against a timed crash set.

    Returns a
    :class:`~repro.flooding.protocols.heartbeat.DetectionReport`.
    """
    spec = ExperimentSpec(
        protocol="failure-detection",
        graph=graph,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        params={
            "crashed": tuple(crashed),
            "crash_time": crash_time,
            "period": period,
            "timeout": timeout,
            "horizon": horizon,
        },
    )
    return run_experiment(spec).metric("report")


def run_broadcast_stream(
    graph: Graph,
    source: NodeId,
    count: int,
    latency: Optional[LatencyModel] = None,
    interval: float = 0.0,
):
    """Flood ``count`` messages back-to-back; return (makespan, covered, msgs).

    ``covered`` is True when every message reached every node.  Pair
    with :class:`~repro.flooding.network.BandwidthLatency` to measure
    sustained broadcast throughput (experiment T6).
    """
    spec = ExperimentSpec(
        protocol="broadcast-stream",
        graph=graph,
        source=source,
        latency=latency,
        params={"count": count, "interval": interval},
    )
    summary = run_experiment(spec)
    return (
        summary.metric("makespan"),
        summary.metric("fully_covered"),
        summary.metric("messages"),
    )


def run_echo(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    value_of=lambda node: 1,
    combine=lambda a, b: a + b,
):
    """Run flood-and-echo (PIF) from ``source``.

    Returns the :class:`~repro.flooding.protocols.echo.EchoProtocol`
    instance so callers can inspect completion, the aggregate, the
    implicit spanning tree, and pending echoes (under failures the
    protocol legitimately never completes).

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    spec = ExperimentSpec(
        protocol="echo",
        graph=graph,
        source=source,
        failures=failures,
        latency=latency,
        params={"value_of": value_of, "combine": combine},
    )
    _, protocol = _execute(spec)
    return protocol


def run_reliable_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    retry_timeout: float = 3.0,
    max_retries: int = 8,
    fault_model: Optional[FaultModel] = None,
) -> FloodResult:
    """Flood with per-link ACK/retransmission over lossy links.

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    spec = ExperimentSpec(
        protocol="reliable-flood",
        graph=graph,
        source=source,
        failures=failures,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
        params={"retry_timeout": retry_timeout, "max_retries": max_retries},
    )
    return run_experiment(spec).result


def run_arq_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    fault_model: Optional[FaultModel] = None,
    base_timeout: float = 2.5,
    backoff: float = 2.0,
    max_timeout: float = 16.0,
    max_retries: int = 10,
    retry_timeout: float = 3.0,
    inner_retries: int = 8,
) -> FloodResult:
    """Reliable flooding *wrapped in the generic ARQ layer*.

    The inner protocol is
    :class:`~repro.flooding.protocols.reliable.ReliableFloodProtocol`
    (parameters ``retry_timeout`` / ``inner_retries``); every inner send
    rides an :class:`~repro.flooding.protocols.arq.ArqProtocol` frame
    with exponential backoff, so coverage converges through flapping
    links, transient partitions and crash-recovery outages that exhaust
    the inner protocol's fixed retry window.

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    spec = ExperimentSpec(
        protocol="arq-flood",
        graph=graph,
        source=source,
        failures=failures,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
        params={
            "base_timeout": base_timeout,
            "backoff": backoff,
            "max_timeout": max_timeout,
            "max_retries": max_retries,
            "retry_timeout": retry_timeout,
            "inner_retries": inner_retries,
        },
    )
    return run_experiment(spec).result


def run_view_change(
    graph: Graph,
    coordinator: NodeId,
    crashed,
    crash_time: float,
    period: float = 1.0,
    timeout: float = 3.5,
    decision_delay: float = 2.0,
    horizon: float = 60.0,
    latency: Optional[LatencyModel] = None,
):
    """Run the in-band view-change pipeline against a timed crash burst.

    Returns a
    :class:`~repro.flooding.protocols.viewchange.ViewChangeReport`.

    Raises
    ------
    SimulationError
        If the coordinator is among the crashed set (fail-over is out of
        scope for this protocol).
    """
    spec = ExperimentSpec(
        protocol="view-change",
        graph=graph,
        source=coordinator,
        latency=latency,
        params={
            "crashed": tuple(crashed),
            "crash_time": crash_time,
            "period": period,
            "timeout": timeout,
            "decision_delay": decision_delay,
            "horizon": horizon,
        },
    )
    return run_experiment(spec).metric("report")


# ----------------------------------------------------------------------
# Batch execution: many specs through the (supervised) engine
# ----------------------------------------------------------------------


def run_experiments(
    specs: Sequence[ExperimentSpec],
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint: Any = None,
    resume: bool = False,
) -> Sequence[RunSummary]:
    """Execute a batch of specs through the execution engine.

    The batch equivalent of ``pool.map(run_experiment, specs)`` with the
    engine's fault-tolerance knobs attached:

    * ``workers`` fans the batch across processes (results identical to
      the serial loop for any count);
    * ``timeout`` / ``retries`` run the batch supervised — a crashed,
      hung or raising run is retried with deterministic backoff, and a
      run that exhausts its retries raises
      :class:`~repro.errors.ExecutionError` with the remote traceback;
    * ``checkpoint`` / ``resume`` journal each completed summary to an
      append-only JSONL file so an interrupted batch resumes without
      recomputation, byte-identical to an uninterrupted one.  Journal
      keys combine each spec's position, protocol, topology size and
      seed, so resuming expects the same spec list.
    """
    from repro.exec.checkpoint import (
        checkpoint_key,
        open_journal,
        pack_pickle,
        unpack_pickle,
    )
    from repro.exec.pool import WorkerPool
    from repro.exec.supervisor import SupervisorConfig

    specs = list(specs)
    if labels is None:
        labels = [f"{spec.protocol}/{i}" for i, spec in enumerate(specs)]
    keys = [
        checkpoint_key(
            "experiment",
            index,
            spec.protocol,
            spec.graph.name,
            spec.graph.number_of_nodes(),
            spec.graph.number_of_edges(),
            spec.source,
            spec.seed,
            spec.loss_rate,
            spec.loss_seed,
        )
        for index, spec in enumerate(specs)
    ]
    journal = open_journal(checkpoint, resume)
    done = {}
    if journal is not None:
        for position, key in enumerate(keys):
            payload = journal.get(key)
            if payload is not None:
                done[position] = unpack_pickle(payload)
    todo = [i for i in range(len(specs)) if i not in done]

    supervised = journal is not None or timeout is not None or retries is not None
    config = None
    if supervised:

        def journal_result(position: int, summary: RunSummary) -> None:
            if journal is not None:
                journal.record(
                    keys[todo[position]],
                    pack_pickle(summary),
                    label=labels[todo[position]],
                )

        config = SupervisorConfig(
            timeout=timeout,
            retries=2 if retries is None else retries,
            failure_mode="raise",
            on_result=journal_result if journal is not None else None,
        )

    pool = WorkerPool(workers=workers, supervisor=config)
    try:
        results = pool.map(
            run_experiment,
            [specs[i] for i in todo],
            labels=[labels[i] for i in todo],
        )
    finally:
        if journal is not None:
            journal.close()
    fresh = iter(results)
    return [
        done[position] if position in done else next(fresh)
        for position in range(len(specs))
    ]


# ----------------------------------------------------------------------
# Repetition harness
# ----------------------------------------------------------------------

# runner -> (protocol name, names of runner kwargs that map onto spec
# fields rather than protocol params)
_SPEC_FIELD_KWARGS = ("failures", "latency", "loss_rate", "loss_seed", "fault_model")
_RUNNER_PROTOCOLS: Dict[Any, str] = {}


def _register_runner_protocols() -> None:
    _RUNNER_PROTOCOLS.update(
        {
            run_flood: "flood",
            run_gossip: "gossip",
            run_treecast: "treecast",
            run_reliable_flood: "reliable-flood",
            run_arq_flood: "arq-flood",
        }
    )


_register_runner_protocols()


def _spec_for_runner(
    runner, graph: Graph, source: NodeId, schedule, kwargs: Dict[str, Any]
) -> ExperimentSpec:
    """Convert a (runner, kwargs) call into the equivalent spec."""
    protocol = _RUNNER_PROTOCOLS[runner]
    fields = {k: v for k, v in kwargs.items() if k in _SPEC_FIELD_KWARGS}
    params = {
        k: v
        for k, v in kwargs.items()
        if k not in _SPEC_FIELD_KWARGS and k != "seed"
    }
    return ExperimentSpec(
        protocol=protocol,
        graph=graph,
        source=source,
        seed=kwargs.get("seed", 0),
        failures=schedule,
        params=params,
        **{k: v for k, v in fields.items() if k != "failures"},
    )


def repeat_runs(
    runner,
    graph: Graph,
    source: NodeId,
    schedule_factory,
    repetitions: int,
    workers: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint: Any = None,
    resume: bool = False,
    **runner_kwargs,
) -> ResultAggregate:
    """Run ``runner`` over seeded failure schedules and aggregate.

    Parameters
    ----------
    runner:
        One of :func:`run_flood` / :func:`run_gossip` / :func:`run_treecast`.
    schedule_factory:
        ``seed -> FailureSchedule`` (or ``None`` for failure-free runs).
    repetitions:
        Number of seeds (0, 1, 2, …).
    workers:
        Fan the repetitions out across this many worker processes via
        the execution engine (:mod:`repro.exec`).  ``None``/``1`` run
        serially; any value yields results identical to the serial
        loop (schedules are derived per seed in the parent, and every
        run is a pure function of its spec).
    timeout / retries / checkpoint / resume:
        Fault-tolerance knobs forwarded to :func:`run_experiments`:
        per-repetition wall-clock budget, bounded retries, and
        journal-based resume of interrupted repetition batches.  They
        require a registered runner (one convertible to specs).
    runner_kwargs:
        Extra keyword arguments forwarded to the runner.  For
        :func:`run_gossip` a ``seed`` kwarg is injected per repetition
        unless already fixed by the caller; likewise a fresh
        ``loss_seed`` is injected per repetition whenever a non-zero
        ``loss_rate`` is requested without a pinned seed.
    """
    inject_seed = runner is run_gossip and "seed" not in runner_kwargs
    inject_loss_seed = (
        runner_kwargs.get("loss_rate", 0.0) and "loss_seed" not in runner_kwargs
    )

    prepared = []
    for seed in range(repetitions):
        schedule = schedule_factory(seed) if schedule_factory else None
        kwargs = dict(runner_kwargs)
        if inject_seed:
            kwargs["seed"] = seed
        if inject_loss_seed:
            kwargs["loss_seed"] = seed
        prepared.append((schedule, kwargs))

    from repro.exec.pool import resolve_workers

    supervised = (
        timeout is not None
        or retries is not None
        or checkpoint is not None
        or resume
    )
    spec_able = runner in _RUNNER_PROTOCOLS
    if supervised and not spec_able:
        raise ValueError(
            "timeout/retries/checkpoint need a registered runner "
            "(run_flood, run_gossip, run_treecast, run_reliable_flood, "
            "run_arq_flood)"
        )

    aggregate = ResultAggregate()
    if spec_able and (supervised or resolve_workers(workers) > 1):
        specs = [
            _spec_for_runner(runner, graph, source, schedule, kwargs)
            for schedule, kwargs in prepared
        ]
        labels = [f"{spec.protocol}/rep{i}" for i, spec in enumerate(specs)]
        summaries = run_experiments(
            specs,
            workers=workers,
            labels=labels,
            timeout=timeout,
            retries=retries,
            checkpoint=checkpoint,
            resume=resume,
        )
        for summary in summaries:
            aggregate.add(summary.result)
    else:
        for schedule, kwargs in prepared:
            aggregate.add(runner(graph, source, failures=schedule, **kwargs))
    return aggregate
