"""High-level experiment runners: one call = one simulated dissemination.

These functions wire together simulator + network + failure schedule +
protocol and return a :class:`~repro.flooding.metrics.FloodResult`.
They are the API the benchmarks, examples and integration tests share,
so every number in EXPERIMENTS.md traces back to one of these runners.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.flooding.failures import FailureSchedule, apply_schedule, survivors
from repro.flooding.faults import FaultModel
from repro.flooding.metrics import FloodResult, ResultAggregate, reachable_from
from repro.flooding.network import LatencyModel, Network
from repro.flooding.protocols.flood import FloodProtocol
from repro.flooding.protocols.gossip import PushGossipProtocol
from repro.flooding.protocols.treecast import TreeCastProtocol
from repro.flooding.simulator import Simulator
from repro.graphs.graph import Graph

NodeId = Hashable

# Generous ceiling: flooding sends < 2m messages, gossip fanout*rounds*n.
_EVENT_BUDGET_FACTOR = 50


def _event_budget(graph: Graph) -> int:
    return _EVENT_BUDGET_FACTOR * (
        graph.number_of_nodes() + graph.number_of_edges() + 100
    )


def summarize_run(
    protocol_name: str,
    graph: Graph,
    source: NodeId,
    schedule: FailureSchedule,
    network: Network,
) -> FloodResult:
    """Condense one finished simulation into a :class:`FloodResult`.

    The coverage denominator is the survivor component: nodes reachable
    from ``source`` in the topology left by the schedule's *final*
    state (crashed-and-recovered nodes count as survivors).  Shared by
    the runners below and the chaos campaign engine
    (:mod:`repro.robustness`).
    """
    alive_graph = survivors(graph, schedule)
    reachable = reachable_from(alive_graph, source)
    covered = {
        node for node in network.delivery_times if network.is_alive(node)
    }
    times = {
        node: t for node, t in network.delivery_times.items() if node in covered
    }
    completion = max(times.values()) if times else None
    return FloodResult(
        protocol=protocol_name,
        n=graph.number_of_nodes(),
        alive=alive_graph.number_of_nodes(),
        reachable=len(reachable),
        covered=len(covered),
        messages=network.stats.messages_sent,
        completion_time=completion,
        delivery_times=times,
    )


def run_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    fault_model: Optional[FaultModel] = None,
) -> FloodResult:
    """Flood ``graph`` from ``source`` under a failure schedule.

    Raises
    ------
    SimulationError
        If the source is scheduled to crash at time 0 (the experiment
        would be vacuous) or the event budget is exceeded.
    """
    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the flood source is crashed at start")
    simulator = Simulator()
    network = Network(
        graph,
        simulator,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
    )
    apply_schedule(schedule, network, simulator)
    protocol = FloodProtocol(network, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=_event_budget(graph))
    return summarize_run("flood", graph, source, schedule, network)


def run_gossip(
    graph: Graph,
    source: NodeId,
    fanout: int = 2,
    rounds: int = 16,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    seed: int = 0,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> FloodResult:
    """Push-gossip ``graph`` from ``source`` (probabilistic baseline)."""
    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the gossip source is crashed at start")
    simulator = Simulator()
    network = Network(
        graph, simulator, latency=latency, loss_rate=loss_rate, loss_seed=loss_seed
    )
    apply_schedule(schedule, network, simulator)
    protocol = PushGossipProtocol(
        network, source, fanout=fanout, rounds=rounds, seed=seed
    )
    network.attach(protocol, start_nodes=graph.nodes())
    simulator.run(max_events=_event_budget(graph) * max(1, rounds))
    return summarize_run("gossip", graph, source, schedule, network)


def run_treecast(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> FloodResult:
    """Broadcast over a precomputed BFS spanning tree (fragile baseline)."""
    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the treecast source is crashed at start")
    simulator = Simulator()
    network = Network(
        graph, simulator, latency=latency, loss_rate=loss_rate, loss_seed=loss_seed
    )
    apply_schedule(schedule, network, simulator)
    protocol = TreeCastProtocol(network, graph, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=_event_budget(graph))
    return summarize_run("treecast", graph, source, schedule, network)


def run_unicast(
    graph: Graph,
    path,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
) -> Tuple[Optional[float], int]:
    """Send one source-routed unicast along ``path``.

    Returns ``(delivery_time, hops_taken)``; the time is ``None`` when a
    failure severed the route.
    """
    from repro.flooding.protocols.unicast import SourceRoutedUnicast

    schedule = failures or FailureSchedule()
    simulator = Simulator()
    network = Network(graph, simulator, latency=latency)
    apply_schedule(schedule, network, simulator)
    protocol = SourceRoutedUnicast(network, path)
    network.attach(protocol, start_nodes=[protocol.source])
    simulator.run(max_events=_event_budget(graph))
    return protocol.delivered_at, protocol.hops_taken


def run_redundant_unicast(
    graph: Graph,
    paths,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
) -> Tuple[Optional[float], int, int]:
    """Send one unicast along several disjoint paths simultaneously.

    Returns ``(first_delivery_time, copies_received, messages_sent)``.
    """
    from repro.flooding.protocols.unicast import RedundantUnicast

    schedule = failures or FailureSchedule()
    simulator = Simulator()
    network = Network(graph, simulator, latency=latency)
    apply_schedule(schedule, network, simulator)
    protocol = RedundantUnicast(network, paths)
    network.attach(protocol, start_nodes=[protocol.source])
    simulator.run(max_events=_event_budget(graph))
    return protocol.delivered_at, protocol.copies_received, protocol.messages_sent


def run_failure_detection(
    graph: Graph,
    crashed,
    crash_time: float,
    period: float = 1.0,
    timeout: float = 3.5,
    horizon: float = 40.0,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
):
    """Run the heartbeat detector against a timed crash set.

    Returns a
    :class:`~repro.flooding.protocols.heartbeat.DetectionReport`.
    """
    from repro.flooding.protocols.heartbeat import HeartbeatProtocol

    schedule = FailureSchedule()
    for victim in crashed:
        schedule.crash(victim, time=crash_time)
    simulator = Simulator()
    network = Network(
        graph, simulator, latency=latency, loss_rate=loss_rate, loss_seed=loss_seed
    )
    apply_schedule(schedule, network, simulator)
    protocol = HeartbeatProtocol(
        network, period=period, timeout=timeout, horizon=horizon
    )
    network.attach(protocol)
    simulator.run(max_events=10_000_000)
    return protocol.detection_report(set(crashed), crash_time)


def run_broadcast_stream(
    graph: Graph,
    source: NodeId,
    count: int,
    latency: Optional[LatencyModel] = None,
    interval: float = 0.0,
):
    """Flood ``count`` messages back-to-back; return (makespan, covered, msgs).

    ``covered`` is True when every message reached every node.  Pair
    with :class:`~repro.flooding.network.BandwidthLatency` to measure
    sustained broadcast throughput (experiment T6).
    """
    from repro.flooding.protocols.flood import StreamFloodProtocol

    simulator = Simulator()
    network = Network(graph, simulator, latency=latency)
    protocol = StreamFloodProtocol(network, source, count, interval=interval)
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=_event_budget(graph) * max(1, count))
    return (
        protocol.makespan(),
        protocol.fully_covered(graph.number_of_nodes()),
        network.stats.messages_sent,
    )


def run_echo(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    value_of=lambda node: 1,
    combine=lambda a, b: a + b,
):
    """Run flood-and-echo (PIF) from ``source``.

    Returns the :class:`~repro.flooding.protocols.echo.EchoProtocol`
    instance so callers can inspect completion, the aggregate, the
    implicit spanning tree, and pending echoes (under failures the
    protocol legitimately never completes).

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    from repro.flooding.protocols.echo import EchoProtocol

    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the echo source is crashed at start")
    simulator = Simulator()
    network = Network(graph, simulator, latency=latency)
    apply_schedule(schedule, network, simulator)
    protocol = EchoProtocol(network, source, value_of=value_of, combine=combine)
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=_event_budget(graph))
    return protocol


def run_reliable_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    retry_timeout: float = 3.0,
    max_retries: int = 8,
    fault_model: Optional[FaultModel] = None,
) -> FloodResult:
    """Flood with per-link ACK/retransmission over lossy links.

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    from repro.flooding.protocols.reliable import ReliableFloodProtocol

    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the flood source is crashed at start")
    simulator = Simulator()
    network = Network(
        graph,
        simulator,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
    )
    apply_schedule(schedule, network, simulator)
    protocol = ReliableFloodProtocol(
        network, source, retry_timeout=retry_timeout, max_retries=max_retries
    )
    network.attach(protocol, start_nodes=[source])
    simulator.run(max_events=_event_budget(graph) * (max_retries + 2))
    return summarize_run("reliable-flood", graph, source, schedule, network)


def run_arq_flood(
    graph: Graph,
    source: NodeId,
    failures: Optional[FailureSchedule] = None,
    latency: Optional[LatencyModel] = None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
    fault_model: Optional[FaultModel] = None,
    base_timeout: float = 2.5,
    backoff: float = 2.0,
    max_timeout: float = 16.0,
    max_retries: int = 10,
    retry_timeout: float = 3.0,
    inner_retries: int = 8,
) -> FloodResult:
    """Reliable flooding *wrapped in the generic ARQ layer*.

    The inner protocol is
    :class:`~repro.flooding.protocols.reliable.ReliableFloodProtocol`
    (parameters ``retry_timeout`` / ``inner_retries``); every inner send
    rides an :class:`~repro.flooding.protocols.arq.ArqProtocol` frame
    with exponential backoff, so coverage converges through flapping
    links, transient partitions and crash-recovery outages that exhaust
    the inner protocol's fixed retry window.

    Raises
    ------
    SimulationError
        If the source is crashed at start.
    """
    from repro.flooding.protocols.arq import ArqProtocol
    from repro.flooding.protocols.reliable import ReliableFloodProtocol

    schedule = failures or FailureSchedule()
    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the flood source is crashed at start")
    simulator = Simulator()
    network = Network(
        graph,
        simulator,
        latency=latency,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
        fault_model=fault_model,
    )
    apply_schedule(schedule, network, simulator)
    inner = ReliableFloodProtocol(
        network, source, retry_timeout=retry_timeout, max_retries=inner_retries
    )
    protocol = ArqProtocol(
        network,
        inner,
        base_timeout=base_timeout,
        backoff=backoff,
        max_timeout=max_timeout,
        max_retries=max_retries,
    )
    network.attach(protocol, start_nodes=[source])
    simulator.run(
        max_events=_event_budget(graph) * (max_retries + inner_retries + 4)
    )
    return summarize_run("arq-reliable-flood", graph, source, schedule, network)


def run_view_change(
    graph: Graph,
    coordinator: NodeId,
    crashed,
    crash_time: float,
    period: float = 1.0,
    timeout: float = 3.5,
    decision_delay: float = 2.0,
    horizon: float = 60.0,
    latency: Optional[LatencyModel] = None,
):
    """Run the in-band view-change pipeline against a timed crash burst.

    Returns a
    :class:`~repro.flooding.protocols.viewchange.ViewChangeReport`.

    Raises
    ------
    SimulationError
        If the coordinator is among the crashed set (fail-over is out of
        scope for this protocol).
    """
    from repro.flooding.protocols.viewchange import ViewChangeProtocol

    crashed_set = set(crashed)
    if coordinator in crashed_set:
        raise SimulationError("coordinator fail-over is not modelled")
    schedule = FailureSchedule()
    for victim in crashed_set:
        schedule.crash(victim, time=crash_time)
    simulator = Simulator()
    network = Network(graph, simulator, latency=latency)
    apply_schedule(schedule, network, simulator)
    protocol = ViewChangeProtocol(
        network,
        coordinator,
        period=period,
        timeout=timeout,
        decision_delay=decision_delay,
        horizon=horizon,
    )
    network.attach(protocol)
    simulator.run(max_events=20_000_000)
    return protocol.convergence_report(crashed_set, crash_time)


def repeat_runs(
    runner,
    graph: Graph,
    source: NodeId,
    schedule_factory,
    repetitions: int,
    **runner_kwargs,
) -> ResultAggregate:
    """Run ``runner`` over seeded failure schedules and aggregate.

    Parameters
    ----------
    runner:
        One of :func:`run_flood` / :func:`run_gossip` / :func:`run_treecast`.
    schedule_factory:
        ``seed -> FailureSchedule`` (or ``None`` for failure-free runs).
    repetitions:
        Number of seeds (0, 1, 2, …).
    runner_kwargs:
        Extra keyword arguments forwarded to the runner.  For
        :func:`run_gossip` a ``seed`` kwarg is injected per repetition
        unless already fixed by the caller; likewise a fresh
        ``loss_seed`` is injected per repetition whenever a non-zero
        ``loss_rate`` is requested without a pinned seed.
    """
    aggregate = ResultAggregate()
    inject_seed = runner is run_gossip and "seed" not in runner_kwargs
    inject_loss_seed = (
        runner_kwargs.get("loss_rate", 0.0) and "loss_seed" not in runner_kwargs
    )
    for seed in range(repetitions):
        schedule = schedule_factory(seed) if schedule_factory else None
        kwargs = dict(runner_kwargs)
        if inject_seed:
            kwargs["seed"] = seed
        if inject_loss_seed:
            kwargs["loss_seed"] = seed
        aggregate.add(runner(graph, source, failures=schedule, **kwargs))
    return aggregate
