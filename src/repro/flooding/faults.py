"""Pluggable per-link message-fault models for the transmit path.

The base :class:`~repro.flooding.network.Network` already models the
paper's adversary (crash-stop nodes, fail-stop links) plus i.i.d.
message loss.  A :class:`FaultModel` generalises the message-level part:
for every message crossing a link it decides the fate of the *delivered
copies* — drop the message, deliver it once, deliver it several times
(duplication), or deliver copies with extra latency (which reorders
them against later traffic).

The contract is a single method, :meth:`FaultModel.copies`, returning
one extra-delay value per copy that should be delivered:

* ``[]``     — the message is dropped on this link;
* ``[0.0]``  — normal delivery (the latency model alone decides timing);
* ``[0, 0]`` — the receiver gets two copies (duplication);
* ``[2.5]``  — one copy, delayed 2.5 time units beyond the sampled
  latency — later messages on the link can overtake it (reordering).

All randomness is owned by the model behind an explicit seed, so a run
with a fault model remains a pure function of its seeds (the repo-wide
determinism contract).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.graphs.graph import edge_key

NodeId = Hashable


class FaultModel:
    """Base class: decide the fate of one message on link (u, v).

    The default is a perfect link; subclasses override :meth:`copies`.
    """

    def copies(self, u: NodeId, v: NodeId) -> List[float]:
        """Extra delays, one per delivered copy (empty list = drop)."""
        return [0.0]


@dataclass(frozen=True)
class LinkFaultProfile:
    """Per-message fault probabilities for one (class of) link.

    Attributes
    ----------
    drop:
        Probability the message is lost outright.
    duplicate:
        Probability a surviving message is delivered twice.
    reorder:
        Probability a surviving copy is held back by ``reorder_delay``
        extra time units (letting later traffic overtake it).
    reorder_delay:
        The extra latency applied to held-back copies.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: float = 2.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise SimulationError(
                    f"{name} probability must be in [0, 1), got {p}"
                )
        if self.reorder_delay < 0:
            raise SimulationError(
                f"reorder_delay must be non-negative, got {self.reorder_delay}"
            )


PERFECT_LINK = LinkFaultProfile()


class RandomFaultModel(FaultModel):
    """Seeded i.i.d. drop / duplicate / reorder faults, per link.

    Parameters
    ----------
    profile:
        Default :class:`LinkFaultProfile` applied to every link.
    per_link:
        Optional ``{(u, v): LinkFaultProfile}`` overrides (undirected —
        ``(u, v)`` and ``(v, u)`` name the same link).
    seed:
        Seed for the model's private RNG; identical seeds reproduce
        identical fault sequences for identical transmit sequences.
    """

    def __init__(
        self,
        profile: LinkFaultProfile = PERFECT_LINK,
        per_link: Optional[Mapping[Tuple[NodeId, NodeId], LinkFaultProfile]] = None,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self._per_link: Dict[frozenset, LinkFaultProfile] = {
            edge_key(u, v): link_profile
            for (u, v), link_profile in (per_link or {}).items()
        }
        self.seed = seed
        self._rng = random.Random(seed)

    def profile_for(self, u: NodeId, v: NodeId) -> LinkFaultProfile:
        """The profile governing link (u, v)."""
        return self._per_link.get(edge_key(u, v), self.profile)

    def _copy_delay(self, profile: LinkFaultProfile) -> float:
        if profile.reorder and self._rng.random() < profile.reorder:
            return profile.reorder_delay
        return 0.0

    def copies(self, u: NodeId, v: NodeId) -> List[float]:
        profile = self.profile_for(u, v)
        if profile.drop and self._rng.random() < profile.drop:
            return []
        delays = [self._copy_delay(profile)]
        if profile.duplicate and self._rng.random() < profile.duplicate:
            delays.append(self._copy_delay(profile))
        return delays


def lossy_links(rate: float, seed: int = 0) -> RandomFaultModel:
    """A fault model dropping each message i.i.d. with ``rate``."""
    return RandomFaultModel(LinkFaultProfile(drop=rate), seed=seed)


def noisy_links(
    drop: float = 0.0,
    duplicate: float = 0.0,
    reorder: float = 0.0,
    reorder_delay: float = 2.0,
    seed: int = 0,
) -> RandomFaultModel:
    """Convenience builder for a uniform drop/duplicate/reorder model."""
    return RandomFaultModel(
        LinkFaultProfile(
            drop=drop,
            duplicate=duplicate,
            reorder=reorder,
            reorder_delay=reorder_delay,
        ),
        seed=seed,
    )
