"""Event-driven flooding simulation: engine, network, failures, protocols.

The paper's motivating application is robust flooding over an LHG
topology.  This package simulates it end-to-end:

* :mod:`repro.flooding.simulator` — deterministic discrete-event engine;
* :mod:`repro.flooding.network` — crash-prone message-passing network
  with pluggable latency models;
* :mod:`repro.flooding.failures` — crash/link-failure schedules and
  adversaries (random, targeted, minimum-cut);
* :mod:`repro.flooding.protocols` — deterministic flooding plus gossip
  and spanning-tree baselines;
* :mod:`repro.flooding.metrics` / :mod:`repro.flooding.experiments` —
  result records and one-call experiment runners.
"""

from repro.flooding.experiments import (
    ExperimentSpec,
    RunSummary,
    experiment_names,
    repeat_runs,
    run_experiment,
    run_experiments,
    run_arq_flood,
    run_broadcast_stream,
    run_echo,
    run_failure_detection,
    run_flood,
    run_gossip,
    run_redundant_unicast,
    run_reliable_flood,
    run_treecast,
    run_unicast,
    run_view_change,
    summarize_run,
)
from repro.flooding.failures import (
    FailureSchedule,
    bisect_groups,
    crash_and_recover,
    crash_before_start,
    flapping_links,
    minimum_cut_attack,
    partition,
    random_crashes,
    random_flapping_links,
    random_link_failures,
    survivors,
    targeted_crashes,
)
from repro.flooding.faults import (
    FaultModel,
    LinkFaultProfile,
    RandomFaultModel,
    lossy_links,
    noisy_links,
)
from repro.flooding.metrics import FloodResult, ResultAggregate, reachable_from
from repro.flooding.network import (
    BandwidthLatency,
    ConstantLatency,
    ExponentialLatency,
    FixedLinkLatency,
    LatencyModel,
    Network,
    NodeApi,
    Protocol,
    UniformLatency,
)
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector, TraceEvent

__all__ = [
    "BandwidthLatency",
    "ConstantLatency",
    "ExperimentSpec",
    "ExponentialLatency",
    "FailureSchedule",
    "FaultModel",
    "FixedLinkLatency",
    "FloodResult",
    "LatencyModel",
    "LinkFaultProfile",
    "Network",
    "NodeApi",
    "Protocol",
    "RandomFaultModel",
    "ResultAggregate",
    "RunSummary",
    "Simulator",
    "TraceCollector",
    "TraceEvent",
    "UniformLatency",
    "bisect_groups",
    "crash_and_recover",
    "crash_before_start",
    "experiment_names",
    "flapping_links",
    "lossy_links",
    "minimum_cut_attack",
    "noisy_links",
    "partition",
    "random_crashes",
    "random_flapping_links",
    "random_link_failures",
    "reachable_from",
    "repeat_runs",
    "run_arq_flood",
    "run_broadcast_stream",
    "run_echo",
    "run_experiment",
    "run_experiments",
    "run_failure_detection",
    "run_flood",
    "run_gossip",
    "run_redundant_unicast",
    "run_reliable_flood",
    "run_treecast",
    "run_unicast",
    "run_view_change",
    "summarize_run",
    "survivors",
    "targeted_crashes",
]
