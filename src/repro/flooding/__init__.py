"""Event-driven flooding simulation: engine, network, failures, protocols.

The paper's motivating application is robust flooding over an LHG
topology.  This package simulates it end-to-end:

* :mod:`repro.flooding.simulator` — deterministic discrete-event engine;
* :mod:`repro.flooding.network` — crash-prone message-passing network
  with pluggable latency models;
* :mod:`repro.flooding.failures` — crash/link-failure schedules and
  adversaries (random, targeted, minimum-cut);
* :mod:`repro.flooding.protocols` — deterministic flooding plus gossip
  and spanning-tree baselines;
* :mod:`repro.flooding.metrics` / :mod:`repro.flooding.experiments` —
  result records and one-call experiment runners.
"""

from repro.flooding.experiments import (
    repeat_runs,
    run_broadcast_stream,
    run_echo,
    run_failure_detection,
    run_flood,
    run_gossip,
    run_redundant_unicast,
    run_reliable_flood,
    run_treecast,
    run_unicast,
    run_view_change,
)
from repro.flooding.failures import (
    FailureSchedule,
    crash_before_start,
    minimum_cut_attack,
    random_crashes,
    random_link_failures,
    survivors,
    targeted_crashes,
)
from repro.flooding.metrics import FloodResult, ResultAggregate, reachable_from
from repro.flooding.network import (
    BandwidthLatency,
    ConstantLatency,
    ExponentialLatency,
    FixedLinkLatency,
    LatencyModel,
    Network,
    NodeApi,
    Protocol,
    UniformLatency,
)
from repro.flooding.simulator import Simulator
from repro.flooding.trace import TraceCollector, TraceEvent

__all__ = [
    "BandwidthLatency",
    "ConstantLatency",
    "ExponentialLatency",
    "FailureSchedule",
    "FixedLinkLatency",
    "FloodResult",
    "LatencyModel",
    "Network",
    "NodeApi",
    "Protocol",
    "ResultAggregate",
    "Simulator",
    "TraceCollector",
    "TraceEvent",
    "UniformLatency",
    "crash_before_start",
    "minimum_cut_attack",
    "random_crashes",
    "random_link_failures",
    "reachable_from",
    "repeat_runs",
    "run_broadcast_stream",
    "run_echo",
    "run_failure_detection",
    "run_flood",
    "run_gossip",
    "run_redundant_unicast",
    "run_reliable_flood",
    "run_treecast",
    "run_unicast",
    "run_view_change",
    "survivors",
    "targeted_crashes",
]
