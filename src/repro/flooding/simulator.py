"""The discrete-event simulation engine.

A :class:`Simulator` advances a virtual clock through an
:class:`~repro.flooding.events.EventQueue`.  Everything the flooding
experiments need — message deliveries, crashes, protocol timers — is an
event; the engine itself knows nothing about networks or protocols, so
it is reusable for any substrate.

Determinism contract: identical schedules produce identical executions.
All randomness lives in the callers (latency models, failure schedules)
behind explicit seeds; the engine adds none.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.flooding.events import Event, EventQueue


class Simulator:
    """A single-clock discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    2
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """How many events have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """How many events are still queued."""
        return len(self._queue)

    def schedule(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule an absolute-time event.

        Raises
        ------
        SchedulingError
            If ``time`` lies in the simulator's past.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} — the clock is already at {self._now}"
            )
        return self._queue.push(time, action, priority=priority, label=label)

    def schedule_after(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule a relative-delay event (``delay ≥ 0``).

        Raises
        ------
        SchedulingError
            If ``delay`` is negative.
        """
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, action, priority=priority, label=label)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Drain the event queue; return the number of events processed.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time
            (the clock is left at ``until``).
        max_events:
            Safety valve against runaway protocols.

        Raises
        ------
        SimulationError
            If called re-entrantly (an event action calling ``run``) or
            if ``max_events`` is exhausted with events still pending.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        processed_before = self._processed
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and (
                    self._processed - processed_before
                ) >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} with "
                        f"{len(self._queue)} events pending — runaway protocol?"
                    )
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.action()
                self._processed += 1
        finally:
            self._running = False
        return self._processed - processed_before
