"""Failure schedules: crash, link-failure and recovery injection.

A :class:`FailureSchedule` is a declarative list of fault events that
:func:`apply_schedule` installs into a simulator/network pair.  Crashes
use a negative event priority so a crash at time t wins against every
message delivery at time t — the conservative adversary (the protocol
never benefits from a doomed node's last-instant forwarding).
Recoveries use a slightly less negative priority, so at one instant the
order is *crash, recover, deliveries*: a same-time crash+recover pair
leaves the node up, but doomed in-flight traffic still dies.

Builders cover the adversaries the experiments need:

* :func:`crash_before_start` — f nodes dead from time 0 (the paper's
  "resilient to k−1 failures" setting);
* :func:`random_crashes` / :func:`random_link_failures` — seeded random
  choices at a given time;
* :func:`targeted_crashes` — highest-degree-first, the worst-case-ish
  adversary for irregular graphs;
* :func:`minimum_cut_attack` — crash a *minimum node cut* (size k), the
  certified cheapest disconnection, used to show k failures can break
  what k−1 cannot;
* :func:`crash_and_recover` — transient crashes (crash-recovery model);
* :func:`partition` — fail every link crossing a group boundary, with
  an optional heal time;
* :func:`flapping_links` / :func:`random_flapping_links` — periodic
  down/up link cycles.

Adding the same event twice (same node crashed at the same time, same
link failed at the same time) is a no-op — both the chaining methods
and :meth:`FailureSchedule.merged` dedupe, so no redundant simulator
events are ever scheduled.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.flooding.network import FAILURE_PRIORITY, RECOVERY_PRIORITY, Network
from repro.flooding.simulator import Simulator
from repro.graphs.connectivity import minimum_node_cut
from repro.graphs.graph import Graph, edge_key

NodeId = Hashable


@dataclass(frozen=True)
class NodeCrash:
    """Crash-stop ``node`` at ``time``."""

    time: float
    node: NodeId


@dataclass(frozen=True)
class NodeRecover:
    """Bring a crashed ``node`` back up at ``time``."""

    time: float
    node: NodeId


@dataclass(frozen=True)
class LinkFailure:
    """Kill link (u, v) at ``time``."""

    time: float
    u: NodeId
    v: NodeId


@dataclass(frozen=True)
class LinkRecover:
    """Restore link (u, v) at ``time``."""

    time: float
    u: NodeId
    v: NodeId


@dataclass
class FailureSchedule:
    """An ordered, duplicate-free bag of failure and recovery events.

    Attributes
    ----------
    incomplete_cut:
        Set by :func:`minimum_cut_attack` when protected nodes were
        dropped from the cut — the remaining crashes are *not*
        guaranteed to disconnect the graph.
    """

    crashes: List[NodeCrash] = field(default_factory=list)
    link_failures: List[LinkFailure] = field(default_factory=list)
    recoveries: List[NodeRecover] = field(default_factory=list)
    link_recoveries: List[LinkRecover] = field(default_factory=list)
    incomplete_cut: bool = False

    def crash(self, node: NodeId, time: float = 0.0) -> "FailureSchedule":
        """Add one crash (deduped); returns self for chaining."""
        event = NodeCrash(time=time, node=node)
        if event not in self.crashes:
            self.crashes.append(event)
        return self

    def recover(self, node: NodeId, time: float = 0.0) -> "FailureSchedule":
        """Add one node recovery (deduped); returns self for chaining."""
        event = NodeRecover(time=time, node=node)
        if event not in self.recoveries:
            self.recoveries.append(event)
        return self

    def _has_link_event(self, events, time: float, u: NodeId, v: NodeId) -> bool:
        key = edge_key(u, v)
        return any(
            e.time == time and edge_key(e.u, e.v) == key for e in events
        )

    def fail_link(self, u: NodeId, v: NodeId, time: float = 0.0) -> "FailureSchedule":
        """Add one link failure (deduped, undirected); returns self."""
        if not self._has_link_event(self.link_failures, time, u, v):
            self.link_failures.append(LinkFailure(time=time, u=u, v=v))
        return self

    def restore_link(
        self, u: NodeId, v: NodeId, time: float = 0.0
    ) -> "FailureSchedule":
        """Add one link recovery (deduped, undirected); returns self."""
        if not self._has_link_event(self.link_recoveries, time, u, v):
            self.link_recoveries.append(LinkRecover(time=time, u=u, v=v))
        return self

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        """All nodes this schedule will crash (at any time)."""
        return {c.node for c in self.crashes}

    def merged(self, other: "FailureSchedule") -> "FailureSchedule":
        """Union of two schedules; duplicate events collapse to one."""
        union = FailureSchedule(
            incomplete_cut=self.incomplete_cut or other.incomplete_cut
        )
        for crash in self.crashes + other.crashes:
            union.crash(crash.node, time=crash.time)
        for failure in self.link_failures + other.link_failures:
            union.fail_link(failure.u, failure.v, time=failure.time)
        for recovery in self.recoveries + other.recoveries:
            union.recover(recovery.node, time=recovery.time)
        for restore in self.link_recoveries + other.link_recoveries:
            union.restore_link(restore.u, restore.v, time=restore.time)
        return union


def apply_schedule(
    schedule: FailureSchedule, network: Network, simulator: Simulator
) -> None:
    """Install every fault event of ``schedule`` into the simulation.

    Failures at time 0 are applied immediately (before any start event),
    matching the "initially dead" interpretation; time-0 recoveries are
    applied right after, so a time-0 crash+recover pair cancels out.
    """
    for crash in schedule.crashes:
        if crash.time <= 0:
            network.crash_node(crash.node)
        else:
            simulator.schedule(
                crash.time,
                lambda node=crash.node: network.crash_node(node),
                priority=FAILURE_PRIORITY,
                label=f"crash:{crash.node!r}",
            )
    for failure in schedule.link_failures:
        if failure.time <= 0:
            network.fail_link(failure.u, failure.v)
        else:
            simulator.schedule(
                failure.time,
                lambda u=failure.u, v=failure.v: network.fail_link(u, v),
                priority=FAILURE_PRIORITY,
                label=f"linkfail:{failure.u!r}-{failure.v!r}",
            )
    for recovery in schedule.recoveries:
        if recovery.time <= 0:
            network.recover_node(recovery.node)
        else:
            simulator.schedule(
                recovery.time,
                lambda node=recovery.node: network.recover_node(node),
                priority=RECOVERY_PRIORITY,
                label=f"recover:{recovery.node!r}",
            )
    for restore in schedule.link_recoveries:
        if restore.time <= 0:
            network.restore_link(restore.u, restore.v)
        else:
            simulator.schedule(
                restore.time,
                lambda u=restore.u, v=restore.v: network.restore_link(u, v),
                priority=RECOVERY_PRIORITY,
                label=f"linkup:{restore.u!r}-{restore.v!r}",
            )


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------


def crash_before_start(nodes: Sequence[NodeId]) -> FailureSchedule:
    """Crash the given nodes at time 0."""
    schedule = FailureSchedule()
    for node in nodes:
        schedule.crash(node, time=0.0)
    return schedule


def random_crashes(
    graph: Graph,
    count: int,
    seed: int = 0,
    time: float = 0.0,
    protect: Optional[Set[NodeId]] = None,
) -> FailureSchedule:
    """Crash ``count`` random nodes (never the protected ones).

    Raises
    ------
    SimulationError
        If fewer than ``count`` unprotected nodes exist.
    """
    protected = protect or set()
    eligible = sorted(
        (v for v in graph.nodes() if v not in protected), key=repr
    )
    if count > len(eligible):
        raise SimulationError(
            f"cannot crash {count} of {len(eligible)} eligible nodes"
        )
    chosen = random.Random(seed).sample(eligible, count)
    schedule = FailureSchedule()
    for node in chosen:
        schedule.crash(node, time=time)
    return schedule


def targeted_crashes(
    graph: Graph,
    count: int,
    time: float = 0.0,
    protect: Optional[Set[NodeId]] = None,
) -> FailureSchedule:
    """Crash the ``count`` highest-degree unprotected nodes.

    On k-regular LHGs this coincides with random choice (all degrees are
    equal); on irregular graphs it approximates the worst adversary.

    Raises
    ------
    SimulationError
        If fewer than ``count`` unprotected nodes exist.
    """
    protected = protect or set()
    eligible = [v for v in graph.nodes() if v not in protected]
    if count > len(eligible):
        raise SimulationError(
            f"cannot crash {count} of {len(eligible)} eligible nodes"
        )
    eligible.sort(key=lambda v: (-graph.degree(v), repr(v)))
    schedule = FailureSchedule()
    for node in eligible[:count]:
        schedule.crash(node, time=time)
    return schedule


def random_link_failures(
    graph: Graph, count: int, seed: int = 0, time: float = 0.0
) -> FailureSchedule:
    """Kill ``count`` random links at ``time``.

    Raises
    ------
    SimulationError
        If the graph has fewer than ``count`` links.
    """
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    if count > len(edges):
        raise SimulationError(f"cannot fail {count} of {len(edges)} links")
    chosen = random.Random(seed).sample(edges, count)
    schedule = FailureSchedule()
    for u, v in chosen:
        schedule.fail_link(u, v, time=time)
    return schedule


def minimum_cut_attack(
    graph: Graph, protect: Optional[Set[NodeId]] = None
) -> FailureSchedule:
    """Crash a certified minimum node cut at time 0.

    On a k-connected graph this is the cheapest possible disconnection —
    exactly k crashes.  Used by the resilience experiments to show the
    cliff at f = k.  If the cut intersects ``protect``, the protected
    nodes are withheld and the schedule's ``incomplete_cut`` flag is set
    ``True``: the remaining crashes form a *sub-cut* that may no longer
    disconnect the graph, and callers must not assume partition.

    Raises
    ------
    GraphError
        Propagated from :func:`minimum_node_cut` for degenerate graphs.
    """
    cut = minimum_node_cut(graph)
    protected = protect or set()
    allowed = [v for v in cut if v not in protected]
    schedule = crash_before_start(sorted(allowed, key=repr))
    schedule.incomplete_cut = len(allowed) < len(cut)
    return schedule


def crash_and_recover(
    nodes: Sequence[NodeId], crash_at: float, recover_at: float
) -> FailureSchedule:
    """Crash ``nodes`` at ``crash_at`` and bring them back at ``recover_at``.

    The crash-recovery fault model: nodes keep their protocol state
    across the outage but miss every message sent while down.

    Raises
    ------
    SimulationError
        If ``recover_at`` is not after ``crash_at``.
    """
    if recover_at <= crash_at:
        raise SimulationError(
            f"recovery at {recover_at} must come after the crash at {crash_at}"
        )
    schedule = FailureSchedule()
    for node in nodes:
        schedule.crash(node, time=crash_at)
        schedule.recover(node, time=recover_at)
    return schedule


def partition(
    graph: Graph,
    groups: Sequence[Iterable[NodeId]],
    at: float = 0.0,
    heal_at: Optional[float] = None,
) -> FailureSchedule:
    """Partition the network into ``groups`` at time ``at``.

    Every topology link whose endpoints fall in *different* groups
    fails at ``at``; with ``heal_at`` set, all of them are restored at
    that time (the transient-partition adversary).  Nodes not listed in
    any group keep all their links.

    Raises
    ------
    SimulationError
        If a node appears in more than one group, or ``heal_at`` is not
        after ``at``.
    """
    if heal_at is not None and heal_at <= at:
        raise SimulationError(
            f"heal time {heal_at} must come after the partition at {at}"
        )
    group_of = {}
    for index, group in enumerate(groups):
        for node in group:
            if node in group_of:
                raise SimulationError(f"node {node!r} appears in two groups")
            group_of[node] = index
    schedule = FailureSchedule()
    # walk the listed nodes' neighbourhoods instead of enumerating all
    # edges: works on any NeighborOracle and touches only the groups
    for u, side_u in group_of.items():
        for v in graph.neighbors(u):
            side_v = group_of.get(v)
            if side_v is None or side_u == side_v:
                continue
            schedule.fail_link(u, v, time=at)
            if heal_at is not None:
                schedule.restore_link(u, v, time=heal_at)
    return schedule


def bisect_groups(
    graph: Graph, source: NodeId
) -> Tuple[List[NodeId], List[NodeId]]:
    """Deterministically split the nodes into two halves for :func:`partition`.

    Nodes are ordered by BFS distance from ``source`` (ties broken by
    ``repr``), so the source-side half is connected and the cut runs
    through the BFS frontier — the geometrically natural partition.
    """
    from repro.graphs.traversal import bfs_levels

    levels = bfs_levels(graph, source)
    ordered = sorted(graph.nodes(), key=lambda v: (levels.get(v, len(levels)), repr(v)))
    half = max(1, len(ordered) // 2)
    return ordered[:half], ordered[half:]


def flapping_links(
    links: Sequence[Tuple[NodeId, NodeId]],
    period: float,
    down_for: float,
    start: float = 0.0,
    cycles: int = 1,
) -> FailureSchedule:
    """Flap each link: down at ``start + i*period``, up ``down_for`` later.

    Raises
    ------
    SimulationError
        If the timing parameters do not describe disjoint down windows.
    """
    if cycles < 1:
        raise SimulationError(f"cycles must be >= 1, got {cycles}")
    if down_for <= 0 or period <= down_for:
        raise SimulationError(
            f"need 0 < down_for < period, got down_for={down_for} period={period}"
        )
    schedule = FailureSchedule()
    for cycle in range(cycles):
        down_at = start + cycle * period
        for u, v in links:
            schedule.fail_link(u, v, time=down_at)
            schedule.restore_link(u, v, time=down_at + down_for)
    return schedule


def random_flapping_links(
    graph: Graph,
    count: int,
    period: float,
    down_for: float,
    start: float = 0.0,
    cycles: int = 1,
    seed: int = 0,
) -> FailureSchedule:
    """Flap ``count`` seeded-random links of ``graph``.

    Raises
    ------
    SimulationError
        If the graph has fewer than ``count`` links, or the timing is
        invalid (see :func:`flapping_links`).
    """
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    if count > len(edges):
        raise SimulationError(f"cannot flap {count} of {len(edges)} links")
    chosen = random.Random(seed).sample(edges, count)
    return flapping_links(
        chosen, period=period, down_for=down_for, start=start, cycles=cycles
    )


def _final_down_nodes(schedule: FailureSchedule) -> Set[NodeId]:
    """Nodes still down once every event of ``schedule`` has fired."""
    down = set()
    for node in schedule.crashed_nodes:
        last_crash = max(c.time for c in schedule.crashes if c.node == node)
        last_recover = max(
            (r.time for r in schedule.recoveries if r.node == node), default=None
        )
        # ties go to recovery, matching RECOVERY_PRIORITY > FAILURE_PRIORITY
        if last_recover is None or last_recover < last_crash:
            down.add(node)
    return down


def _final_down_links(schedule: FailureSchedule) -> Set[frozenset]:
    """Links still down once every event of ``schedule`` has fired."""
    down = set()
    keys = dict.fromkeys(edge_key(f.u, f.v) for f in schedule.link_failures)
    for key in keys:
        last_fail = max(
            f.time for f in schedule.link_failures if edge_key(f.u, f.v) == key
        )
        last_restore = max(
            (
                r.time
                for r in schedule.link_recoveries
                if edge_key(r.u, r.v) == key
            ),
            default=None,
        )
        if last_restore is None or last_restore < last_fail:
            down.add(key)
    return down


def survivors(graph, schedule: FailureSchedule):
    """The topology as seen after all of ``schedule`` has struck.

    Removes nodes and links that are down *in the schedule's final
    state* — a crash (or link failure) followed by a later recovery
    leaves the node (link) in the survivor graph.  This is the ground
    truth the metrics layer uses to compute *reachable* coverage.

    Mutable dict-of-sets :class:`Graph` inputs return a cut-down
    ``Graph`` copy, as always.  Read-only oracle backends (CSR,
    implicit JD, another view) return a lazy
    :class:`~repro.graphs.faultview.FaultView` instead — O(#failures)
    state, so million-node survivor topologies cost nothing to build.
    """
    down_nodes = _final_down_nodes(schedule)
    down_links = _final_down_links(schedule)
    if not hasattr(graph, "without_nodes"):
        from repro.graphs.faultview import FaultView

        return FaultView(graph, down_nodes, down_links)
    remaining = graph.without_nodes(down_nodes & set(graph.nodes()))
    for key in down_links:
        endpoints = sorted(key, key=repr)
        if len(endpoints) == 2 and remaining.has_edge(*endpoints):
            remaining.remove_edge(*endpoints)
    return remaining
