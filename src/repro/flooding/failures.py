"""Failure schedules: crash and link-failure injection.

A :class:`FailureSchedule` is a declarative list of failure events that
:func:`apply_schedule` installs into a simulator/network pair.  Crashes
use a negative event priority so a crash at time t wins against every
message delivery at time t — the conservative adversary (the protocol
never benefits from a doomed node's last-instant forwarding).

Builders cover the adversaries the experiments need:

* :func:`crash_before_start` — f nodes dead from time 0 (the paper's
  "resilient to k−1 failures" setting);
* :func:`random_crashes` / :func:`random_link_failures` — seeded random
  choices at a given time;
* :func:`targeted_crashes` — highest-degree-first, the worst-case-ish
  adversary for irregular graphs;
* :func:`minimum_cut_attack` — crash a *minimum node cut* (size k), the
  certified cheapest disconnection, used to show k failures can break
  what k−1 cannot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.flooding.network import FAILURE_PRIORITY, Network
from repro.flooding.simulator import Simulator
from repro.graphs.connectivity import minimum_node_cut
from repro.graphs.graph import Graph

NodeId = Hashable


@dataclass(frozen=True)
class NodeCrash:
    """Crash-stop ``node`` at ``time``."""

    time: float
    node: NodeId


@dataclass(frozen=True)
class LinkFailure:
    """Kill link (u, v) at ``time``."""

    time: float
    u: NodeId
    v: NodeId


@dataclass
class FailureSchedule:
    """An ordered bag of failure events."""

    crashes: List[NodeCrash] = field(default_factory=list)
    link_failures: List[LinkFailure] = field(default_factory=list)

    def crash(self, node: NodeId, time: float = 0.0) -> "FailureSchedule":
        """Add one crash; returns self for chaining."""
        self.crashes.append(NodeCrash(time=time, node=node))
        return self

    def fail_link(self, u: NodeId, v: NodeId, time: float = 0.0) -> "FailureSchedule":
        """Add one link failure; returns self for chaining."""
        self.link_failures.append(LinkFailure(time=time, u=u, v=v))
        return self

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        """All nodes this schedule will crash (at any time)."""
        return {c.node for c in self.crashes}

    def merged(self, other: "FailureSchedule") -> "FailureSchedule":
        """Union of two schedules."""
        return FailureSchedule(
            crashes=self.crashes + other.crashes,
            link_failures=self.link_failures + other.link_failures,
        )


def apply_schedule(
    schedule: FailureSchedule, network: Network, simulator: Simulator
) -> None:
    """Install every failure event of ``schedule`` into the simulation.

    Failures at time 0 are applied immediately (before any start event),
    matching the "initially dead" interpretation.
    """
    for crash in schedule.crashes:
        if crash.time <= 0:
            network.crash_node(crash.node)
        else:
            simulator.schedule(
                crash.time,
                lambda node=crash.node: network.crash_node(node),
                priority=FAILURE_PRIORITY,
                label=f"crash:{crash.node!r}",
            )
    for failure in schedule.link_failures:
        if failure.time <= 0:
            network.fail_link(failure.u, failure.v)
        else:
            simulator.schedule(
                failure.time,
                lambda u=failure.u, v=failure.v: network.fail_link(u, v),
                priority=FAILURE_PRIORITY,
                label=f"linkfail:{failure.u!r}-{failure.v!r}",
            )


# ----------------------------------------------------------------------
# Schedule builders
# ----------------------------------------------------------------------


def crash_before_start(nodes: Sequence[NodeId]) -> FailureSchedule:
    """Crash the given nodes at time 0."""
    schedule = FailureSchedule()
    for node in nodes:
        schedule.crash(node, time=0.0)
    return schedule


def random_crashes(
    graph: Graph,
    count: int,
    seed: int = 0,
    time: float = 0.0,
    protect: Optional[Set[NodeId]] = None,
) -> FailureSchedule:
    """Crash ``count`` random nodes (never the protected ones).

    Raises
    ------
    SimulationError
        If fewer than ``count`` unprotected nodes exist.
    """
    protected = protect or set()
    eligible = sorted(
        (v for v in graph.nodes() if v not in protected), key=repr
    )
    if count > len(eligible):
        raise SimulationError(
            f"cannot crash {count} of {len(eligible)} eligible nodes"
        )
    chosen = random.Random(seed).sample(eligible, count)
    schedule = FailureSchedule()
    for node in chosen:
        schedule.crash(node, time=time)
    return schedule


def targeted_crashes(
    graph: Graph,
    count: int,
    time: float = 0.0,
    protect: Optional[Set[NodeId]] = None,
) -> FailureSchedule:
    """Crash the ``count`` highest-degree unprotected nodes.

    On k-regular LHGs this coincides with random choice (all degrees are
    equal); on irregular graphs it approximates the worst adversary.

    Raises
    ------
    SimulationError
        If fewer than ``count`` unprotected nodes exist.
    """
    protected = protect or set()
    eligible = [v for v in graph.nodes() if v not in protected]
    if count > len(eligible):
        raise SimulationError(
            f"cannot crash {count} of {len(eligible)} eligible nodes"
        )
    eligible.sort(key=lambda v: (-graph.degree(v), repr(v)))
    schedule = FailureSchedule()
    for node in eligible[:count]:
        schedule.crash(node, time=time)
    return schedule


def random_link_failures(
    graph: Graph, count: int, seed: int = 0, time: float = 0.0
) -> FailureSchedule:
    """Kill ``count`` random links at ``time``.

    Raises
    ------
    SimulationError
        If the graph has fewer than ``count`` links.
    """
    edges = sorted(graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
    if count > len(edges):
        raise SimulationError(f"cannot fail {count} of {len(edges)} links")
    chosen = random.Random(seed).sample(edges, count)
    schedule = FailureSchedule()
    for u, v in chosen:
        schedule.fail_link(u, v, time=time)
    return schedule


def minimum_cut_attack(
    graph: Graph, protect: Optional[Set[NodeId]] = None
) -> FailureSchedule:
    """Crash a certified minimum node cut at time 0.

    On a k-connected graph this is the cheapest possible disconnection —
    exactly k crashes.  Used by the resilience experiments to show the
    cliff at f = k.  If the cut contains protected nodes the schedule is
    built anyway (the caller decides how to interpret it).

    Raises
    ------
    GraphError
        Propagated from :func:`minimum_node_cut` for degenerate graphs.
    """
    cut = minimum_node_cut(graph)
    protected = protect or set()
    return crash_before_start(sorted((v for v in cut if v not in protected), key=repr))


def survivors(graph: Graph, schedule: FailureSchedule) -> Graph:
    """The topology as seen after all of ``schedule`` has struck.

    Removes crashed nodes and failed links; the ground truth the metrics
    layer uses to compute *reachable* coverage.
    """
    remaining = graph.without_nodes(schedule.crashed_nodes & set(graph.nodes()))
    for failure in schedule.link_failures:
        if remaining.has_edge(failure.u, failure.v):
            remaining.remove_edge(failure.u, failure.v)
    return remaining
