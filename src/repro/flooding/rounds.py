"""Synchronous-round flooding over any ``NeighborOracle``.

The discrete-event simulator (:mod:`repro.flooding.simulator`) prices
every message as a scheduled closure — perfect for latency models,
faults and chaos, but at n = 10⁶ a single flood would hold millions of
in-flight events at once.  Under **unit latency** the event semantics
collapse to synchronous rounds: every node first covered in round r
forwards in round r + 1, so a frontier-by-frontier sweep reproduces
the exact coverage, message count and completion time of
:class:`~repro.flooding.protocols.flood.FloodProtocol` on the default
network — which the test suite pins — while holding only the current
frontier.

Message accounting matches the protocol exactly:

* the source sends to **all** of its neighbours (``deg(source)``);
* every other covered node forwards on first receipt to every
  neighbour except the sender (``deg(v) − 1``);
* duplicate receipts trigger nothing.

With no failures, completion time (in hops) equals the number of
rounds — the source's eccentricity in its component.

**Failure schedules.**  :func:`round_flood` also takes a
:class:`~repro.flooding.failures.FailureSchedule`, replayed with the
event simulator's exact tie-breaking (at one instant: failures, then
recoveries, then deliveries — see ``FAILURE_PRIORITY``):

* a send at round r is silently dropped (never counted) when the link
  is already down at r — the sender cannot use a link it has lost;
* a counted message dies in flight when its receiver is down or its
  link is down at delivery time r + 1;
* crashed-then-recovered nodes miss everything sent while they were
  down but can be covered by a later frontier.

The result's ``covered``/``completion_time`` count only nodes alive in
the schedule's *final* state and ``alive``/``reachable`` come from the
survivor topology (a lazy :class:`~repro.graphs.faultview.FaultView`)
— byte-identical to the event simulator's
:class:`~repro.flooding.metrics.FloodResult` under the same schedule,
which ``tests/test_faultview.py`` pins over the small census.

**Loss.**  ``loss_rate`` applies seed-stable *per-round batched*
Bernoulli sampling: round r draws from
``random.Random(derive_seed(loss_seed, "round-flood-loss", r))`` in
deterministic frontier order.  Lost messages are counted as sent and
die in flight, matching the event simulator's cost model — but the
draw *order* is round-batched rather than event-interleaved, so loss
runs are reproducible against this engine, not against the event
simulator.

Dense-int oracles (a label-free :class:`~repro.graphs.csr.CSRGraph`,
the :class:`~repro.graphs.implicit.ImplicitJDOracle`, a
:class:`~repro.graphs.faultview.FaultView` over either) take a flat
``bytearray``-seen fast path: ~1 byte per node of working state beyond
the frontier lists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

from repro.errors import NodeNotFoundError, SimulationError
from repro.graphs.faultview import FaultView, component_size, id_bound
from repro.graphs.graph import edge_key
from repro.graphs.oracle import NeighborOracle, oracle_has_node

NodeId = Hashable


@dataclass(frozen=True)
class RoundFloodResult:
    """Outcome of one synchronous-round flood.

    ``messages``, ``covered`` and ``completion_time`` equal the
    event-driven flood's message count, alive coverage and completion
    time under unit latency with the same failure schedule.  Without
    failures ``covered == reachable == alive == n`` (flooding fills
    its component); ``alive`` and ``reachable`` default accordingly so
    pre-failure constructors are unchanged.
    """

    source: NodeId
    n: int
    covered: int
    messages: int
    rounds: int
    round_sizes: List[int] = field(default_factory=list)
    alive: Optional[int] = None
    reachable: Optional[int] = None

    def __post_init__(self) -> None:
        if self.alive is None:
            object.__setattr__(self, "alive", self.n)
        if self.reachable is None:
            object.__setattr__(self, "reachable", self.covered)

    @property
    def fully_covered(self) -> bool:
        """True when every reachable survivor got the payload."""
        return self.covered >= (self.reachable or 0)

    @property
    def delivery_ratio(self) -> float:
        """covered / reachable (1.0 when nothing was reachable)."""
        if not self.reachable:
            return 1.0
        return self.covered / self.reachable

    @property
    def completion_time(self) -> Optional[float]:
        """Hops to the last surviving delivery (``None`` if none)."""
        if self.covered == 0:
            return None
        return float(self.rounds)


def round_flood(
    oracle: NeighborOracle,
    source: NodeId,
    schedule=None,
    loss_rate: float = 0.0,
    loss_seed: int = 0,
) -> RoundFloodResult:
    """Flood ``oracle`` from ``source`` in synchronous rounds.

    Parameters
    ----------
    schedule:
        Optional :class:`~repro.flooding.failures.FailureSchedule`
        replayed at round granularity (event times are rounds).
    loss_rate / loss_seed:
        Per-message Bernoulli loss, sampled seed-stably per round.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not a node of the oracle.
    SimulationError
        If the source is crashed at start, or ``loss_rate`` is not a
        probability.
    """
    if not oracle_has_node(oracle, source):
        raise NodeNotFoundError(source)
    if not 0.0 <= loss_rate <= 1.0:
        raise SimulationError(f"loss_rate must be in [0, 1], got {loss_rate}")
    faulty = loss_rate > 0.0 or (schedule is not None and _has_events(schedule))
    if not faulty:
        bound = id_bound(oracle)
        if bound is not None:
            return _round_flood_dense(oracle, int(source), bound)
        return _round_flood_generic(oracle, source)
    if schedule is None:
        from repro.flooding.failures import FailureSchedule

        schedule = FailureSchedule()
    return _round_flood_faulty(oracle, source, schedule, loss_rate, loss_seed)


def _has_events(schedule) -> bool:
    return bool(
        schedule.crashes
        or schedule.link_failures
        or schedule.recoveries
        or schedule.link_recoveries
    )


def _round_flood_dense(
    oracle: NeighborOracle, source: int, bound: int
) -> RoundFloodResult:
    seen = bytearray(bound)
    seen[source] = 1
    neighbors = oracle.neighbors
    frontier = [source]
    covered = 1
    messages = oracle.degree(source)
    rounds = 0
    round_sizes = [1]
    while True:
        next_frontier = []
        append = next_frontier.append
        for node in frontier:
            for neighbor in neighbors(node):
                if not seen[neighbor]:
                    seen[neighbor] = 1
                    append(neighbor)
        if not next_frontier:
            break
        rounds += 1
        round_sizes.append(len(next_frontier))
        covered += len(next_frontier)
        # each newly covered node forwards to all neighbours but one
        messages += sum(
            oracle.degree(node) - 1 for node in next_frontier
        )
        frontier = next_frontier
    return RoundFloodResult(
        source=source,
        n=oracle.num_nodes(),
        covered=covered,
        messages=messages,
        rounds=rounds,
        round_sizes=round_sizes,
    )


def _round_flood_generic(
    oracle: NeighborOracle, source: NodeId
) -> RoundFloodResult:
    seen = {source}
    frontier = [source]
    covered = 1
    messages = oracle.degree(source)
    rounds = 0
    round_sizes = [1]
    while True:
        next_frontier = []
        for node in frontier:
            for neighbor in oracle.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        rounds += 1
        round_sizes.append(len(next_frontier))
        covered += len(next_frontier)
        messages += sum(oracle.degree(node) - 1 for node in next_frontier)
        frontier = next_frontier
    return RoundFloodResult(
        source=source,
        n=oracle.num_nodes(),
        covered=covered,
        messages=messages,
        rounds=rounds,
        round_sizes=round_sizes,
    )


# ----------------------------------------------------------------------
# The failure engine
# ----------------------------------------------------------------------


def _timeline(schedule) -> List[tuple]:
    """Schedule events as (time, phase, kind, a, b), simulator-ordered.

    Phase 0 (failures) sorts before phase 1 (recoveries) at equal
    times — the ``FAILURE_PRIORITY < RECOVERY_PRIORITY`` tie-break, so
    a same-instant crash+recover pair leaves the node up.
    """
    events = []
    for crash in schedule.crashes:
        events.append((crash.time, 0, "node", crash.node, None))
    for failure in schedule.link_failures:
        events.append((failure.time, 0, "link", failure.u, failure.v))
    for recovery in schedule.recoveries:
        events.append((recovery.time, 1, "node-up", recovery.node, None))
    for restore in schedule.link_recoveries:
        events.append((restore.time, 1, "link-up", restore.u, restore.v))
    events.sort(key=lambda event: (event[0], event[1]))
    return events


def _round_flood_faulty(
    oracle: NeighborOracle,
    source: NodeId,
    schedule,
    loss_rate: float,
    loss_seed: int,
) -> RoundFloodResult:
    from repro.flooding.failures import _final_down_links, _final_down_nodes

    if any(c.node == source and c.time <= 0 for c in schedule.crashes):
        raise SimulationError("the flood source is crashed at start")

    # the survivor topology (final schedule state) prices alive/reachable
    view = FaultView(oracle, _final_down_nodes(schedule), _final_down_links(schedule))
    final_down = view.down_nodes
    alive = view.num_nodes()
    reachable = component_size(view, source) if view.has_node(source) else 0

    events = _timeline(schedule)
    down: set = set()
    dead_links: set = set()
    index = 0

    def advance(now: float) -> None:
        nonlocal index
        while index < len(events) and events[index][0] <= now:
            _, _, kind, a, b = events[index]
            index += 1
            if kind == "node":
                down.add(a)
            elif kind == "node-up":
                down.discard(a)
            elif kind == "link":
                dead_links.add(edge_key(a, b))
            else:
                dead_links.discard(edge_key(a, b))

    advance(0)
    check_links = bool(schedule.link_failures or schedule.link_recoveries)
    bound = id_bound(oracle)
    if bound is not None:
        seen: object = bytearray(bound)
        seen[source] = 1  # type: ignore[index]
        is_seen = seen.__getitem__  # type: ignore[attr-defined]
        mark = lambda v: seen.__setitem__(v, 1)  # type: ignore[attr-defined] # noqa: E731
    else:
        seen = {source}
        is_seen = seen.__contains__  # type: ignore[attr-defined]
        mark = seen.add  # type: ignore[attr-defined]

    neighbors = oracle.neighbors
    messages = 0
    covered = 1 if source not in final_down else 0
    round_sizes = [covered]
    frontier = [(source, None)]
    now = 0
    while frontier:
        rng = (
            random.Random(_loss_round_seed(loss_seed, now))
            if loss_rate > 0.0
            else None
        )
        pending = []
        for node, sender in frontier:
            for target in neighbors(node):
                if target == sender:
                    continue  # first receipt suppresses the return copy
                if check_links and edge_key(node, target) in dead_links:
                    continue  # link already down at send time: never sent
                messages += 1
                if rng is not None and rng.random() < loss_rate:
                    continue  # counted as sent, lost in flight
                if not is_seen(target):
                    pending.append((node, target))
        if not pending:
            break
        advance(now + 1)
        newly = []
        survivors_covered = 0
        for sender, target in pending:
            if is_seen(target):
                continue
            if target in down:
                continue  # receiver dead at delivery time
            if check_links and edge_key(sender, target) in dead_links:
                continue  # link died with the message in flight
            mark(target)
            newly.append((target, sender))
            if target not in final_down:
                survivors_covered += 1
        now += 1
        round_sizes.append(survivors_covered)
        covered += survivors_covered
        frontier = newly
    # doomed nodes keep relaying until the end; completion counts only
    # deliveries that survive, so trim the trailing doomed-only rounds
    while len(round_sizes) > 1 and round_sizes[-1] == 0:
        round_sizes.pop()
    if covered == 0:
        round_sizes = [0]
    return RoundFloodResult(
        source=source,
        n=oracle.num_nodes(),
        covered=covered,
        messages=messages,
        rounds=len(round_sizes) - 1,
        round_sizes=round_sizes,
        alive=alive,
        reachable=reachable,
    )


def _loss_round_seed(loss_seed: int, round_index: int) -> int:
    from repro.exec.seeding import derive_seed

    return derive_seed(loss_seed, "round-flood-loss", round_index)
