"""Synchronous-round flooding over any ``NeighborOracle``.

The discrete-event simulator (:mod:`repro.flooding.simulator`) prices
every message as a scheduled closure — perfect for latency models,
faults and chaos, but at n = 10⁶ a single flood would hold millions of
in-flight events at once.  Under **unit latency and no failures** the
event semantics collapse to synchronous rounds: every node first
covered in round r forwards in round r + 1, so a frontier-by-frontier
sweep reproduces the exact coverage, message count and completion time
of :class:`~repro.flooding.protocols.flood.FloodProtocol` on the
default network — which the test suite pins — while holding only the
current frontier.

Message accounting matches the protocol exactly:

* the source sends to **all** of its neighbours (``deg(source)``);
* every other covered node forwards on first receipt to every
  neighbour except the sender (``deg(v) − 1``);
* duplicate receipts trigger nothing.

Completion time (in hops) equals the number of rounds — the source's
eccentricity in its component.

Dense-int oracles (a label-free :class:`~repro.graphs.csr.CSRGraph`,
the :class:`~repro.graphs.implicit.ImplicitJDOracle`) take a flat
``bytearray``-seen fast path: ~1 byte per node of working state beyond
the frontier lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List

from repro.errors import NodeNotFoundError
from repro.graphs.oracle import NeighborOracle, oracle_has_node

NodeId = Hashable


@dataclass(frozen=True)
class RoundFloodResult:
    """Outcome of one synchronous-round flood.

    ``messages`` and ``rounds`` equal the event-driven flood's message
    count and completion time under unit latency with no failures;
    ``covered == reachable`` always (flooding fills its component).
    """

    source: NodeId
    n: int
    covered: int
    messages: int
    rounds: int
    round_sizes: List[int] = field(default_factory=list)

    @property
    def reachable(self) -> int:
        """Nodes reachable from the source — what flooding covers."""
        return self.covered

    @property
    def fully_covered(self) -> bool:
        """True by construction (kept for FloodResult-shaped consumers)."""
        return True

    @property
    def delivery_ratio(self) -> float:
        """covered / reachable — 1.0 by construction."""
        return 1.0

    @property
    def completion_time(self) -> float:
        """Completion time in hops (== rounds)."""
        return float(self.rounds)


def _dense_ids(oracle: NeighborOracle) -> bool:
    """True when the oracle's nodes are known to be the ints 0 … n − 1."""
    if getattr(oracle, "dense_labels", False):
        return True
    from repro.graphs.implicit import ImplicitJDOracle

    return isinstance(oracle, ImplicitJDOracle)


def round_flood(oracle: NeighborOracle, source: NodeId) -> RoundFloodResult:
    """Flood ``oracle`` from ``source`` in synchronous rounds.

    Raises
    ------
    NodeNotFoundError
        If ``source`` is not a node of the oracle.
    """
    if not oracle_has_node(oracle, source):
        raise NodeNotFoundError(source)
    if _dense_ids(oracle):
        return _round_flood_dense(oracle, int(source))
    return _round_flood_generic(oracle, source)


def _round_flood_dense(oracle: NeighborOracle, source: int) -> RoundFloodResult:
    n = oracle.num_nodes()
    seen = bytearray(n)
    seen[source] = 1
    neighbors = oracle.neighbors
    frontier = [source]
    covered = 1
    messages = oracle.degree(source)
    rounds = 0
    round_sizes = [1]
    while True:
        next_frontier = []
        append = next_frontier.append
        for node in frontier:
            for neighbor in neighbors(node):
                if not seen[neighbor]:
                    seen[neighbor] = 1
                    append(neighbor)
        if not next_frontier:
            break
        rounds += 1
        round_sizes.append(len(next_frontier))
        covered += len(next_frontier)
        # each newly covered node forwards to all neighbours but one
        messages += sum(
            oracle.degree(node) - 1 for node in next_frontier
        )
        frontier = next_frontier
    return RoundFloodResult(
        source=source,
        n=n,
        covered=covered,
        messages=messages,
        rounds=rounds,
        round_sizes=round_sizes,
    )


def _round_flood_generic(
    oracle: NeighborOracle, source: NodeId
) -> RoundFloodResult:
    seen = {source}
    frontier = [source]
    covered = 1
    messages = oracle.degree(source)
    rounds = 0
    round_sizes = [1]
    while True:
        next_frontier = []
        for node in frontier:
            for neighbor in oracle.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    next_frontier.append(neighbor)
        if not next_frontier:
            break
        rounds += 1
        round_sizes.append(len(next_frontier))
        covered += len(next_frontier)
        messages += sum(oracle.degree(node) - 1 for node in next_frontier)
        frontier = next_frontier
    return RoundFloodResult(
        source=source,
        n=oracle.num_nodes(),
        covered=covered,
        messages=messages,
        rounds=rounds,
        round_sizes=round_sizes,
    )
