"""Event queue primitives for the discrete-event simulator.

A simulation is a totally ordered stream of :class:`Event` objects.
Ordering is ``(time, priority, sequence)``: the sequence number breaks
ties deterministically in scheduling order, which makes every run
bit-reproducible for a fixed seed — a hard requirement for the
experiment harness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingError


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    priority:
        Secondary key; lower fires first at equal times.  Failure events
        use a negative priority so a crash at time t beats a message
        delivery at time t (the conservative adversary).
    sequence:
        Scheduling-order tie-breaker (assigned by the queue).
    action:
        Zero-argument callable executed when the event fires.
    label:
        Debug/trace tag.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time``; returns the (cancellable) event.

        Raises
        ------
        SchedulingError
            If ``time`` is negative or not finite.
        """
        if not (time >= 0):  # also rejects NaN
            raise SchedulingError(f"cannot schedule at time {time!r}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Return the next non-cancelled event, or ``None`` when drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None
