"""Network model: topology + latency + crash state + protocol plumbing.

A :class:`Network` binds a topology graph to a
:class:`~repro.flooding.simulator.Simulator` and a latency model, and
delivers messages between protocol instances.  The model matches the
paper's setting:

* **crash-stop nodes** — a crashed node neither forwards nor receives,
  exactly the failures Properties 1–2 guard against;
* **fail-stop links** — a failed link silently drops traffic in both
  directions;
* **asynchronous links** — per-message latency drawn from a pluggable
  :class:`LatencyModel`; the default unit latency makes simulated time
  equal hop count, which is what the paper's diameter claims are about.

Beyond the paper's adversary the network also supports *recoverable*
faults (:meth:`Network.recover_node` / :meth:`Network.restore_link`
undo a crash / link failure — a recovered node keeps its protocol state
but any traffic sent while it was down is gone) and message-level
faults via a pluggable :class:`~repro.flooding.faults.FaultModel` on
the transmit path that can drop, duplicate, or extra-delay (reorder)
individual messages per link.

Protocols implement the :class:`Protocol` interface; the network calls
``on_start`` / ``on_message`` and exposes a narrow :class:`NodeApi` so a
protocol can only do what a real process could (read its own neighbour
list, send, set timers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import ProtocolError, SimulationError
from repro.flooding.faults import FaultModel
from repro.flooding.simulator import Simulator
from repro.graphs.graph import edge_key
from repro.graphs.oracle import NeighborOracle, oracle_has_edge, oracle_nodes

NodeId = Hashable

FAILURE_PRIORITY = -10  # crashes at time t beat deliveries at time t
RECOVERY_PRIORITY = -5  # recoveries at time t beat deliveries, lose to crashes


class LatencyModel:
    """Base class: per-message link latency.

    Stateless models implement :meth:`sample`.  Models that need the
    wall clock (e.g. store-and-forward queueing) override
    :meth:`sample_at`; the default delegates to :meth:`sample`.
    """

    def sample(self, u: NodeId, v: NodeId) -> float:
        """Latency for one message crossing link (u, v)."""
        raise NotImplementedError

    def sample_at(self, u: NodeId, v: NodeId, now: float) -> float:
        """Latency for a message entering link (u, v) at time ``now``."""
        return self.sample(u, v)


class ConstantLatency(LatencyModel):
    """Every link takes exactly ``value`` time units (default 1 hop)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise SimulationError(f"latency must be positive, got {value}")
        self.value = value

    def sample(self, u: NodeId, v: NodeId) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency uniform in [low, high]; deterministic in the seed."""

    def __init__(self, low: float, high: float, seed: int = 0) -> None:
        if not 0 < low <= high:
            raise SimulationError(f"need 0 < low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high
        self._rng = random.Random(seed)

    def sample(self, u: NodeId, v: NodeId) -> float:
        return self._rng.uniform(self.low, self.high)


class ExponentialLatency(LatencyModel):
    """Heavy-ish tailed latency: ``base + Exp(mean)``, seed-deterministic."""

    def __init__(self, base: float = 0.1, mean: float = 1.0, seed: int = 0) -> None:
        if base <= 0 or mean <= 0:
            raise SimulationError("base and mean must be positive")
        self.base = base
        self.mean = mean
        self._rng = random.Random(seed)

    def sample(self, u: NodeId, v: NodeId) -> float:
        return self.base + self._rng.expovariate(1.0 / self.mean)


class FixedLinkLatency(LatencyModel):
    """Fixed per-link latencies from a weight function.

    Unlike :class:`UniformLatency` (fresh draw per message), every
    message on a given link takes the *same* time — the model under
    which flooding completion time equals the source's **weighted
    eccentricity**, which the test suite cross-validates against an
    independent Dijkstra implementation
    (:mod:`repro.graphs.weighted`).
    """

    def __init__(self, weight_fn) -> None:
        self._weight = weight_fn

    def sample(self, u: NodeId, v: NodeId) -> float:
        value = self._weight(u, v)
        if value <= 0:
            raise SimulationError(f"link weight must be positive, got {value}")
        return value


class BandwidthLatency(LatencyModel):
    """Store-and-forward links with finite bandwidth.

    Each directed link serialises one message per ``service`` time
    units; messages entering a busy link queue behind it (FIFO).  Every
    message additionally pays ``propagation`` flight time.  Under this
    model a node's *degree* throttles how fast it can fan a burst of
    messages out — which is why edge-minimal k-regular topologies are
    the right shape for broadcast throughput (experiment T6).
    """

    def __init__(self, service: float = 1.0, propagation: float = 0.1) -> None:
        if service <= 0 or propagation < 0:
            raise SimulationError(
                "service must be positive and propagation non-negative"
            )
        self.service = service
        self.propagation = propagation
        self._busy_until: Dict[Tuple[NodeId, NodeId], float] = {}

    def sample(self, u: NodeId, v: NodeId) -> float:  # pragma: no cover
        raise SimulationError(
            "BandwidthLatency is stateful; the network uses sample_at"
        )

    def sample_at(self, u: NodeId, v: NodeId, now: float) -> float:
        start = max(now, self._busy_until.get((u, v), 0.0))
        finish = start + self.service
        self._busy_until[(u, v)] = finish
        return (finish - now) + self.propagation


class Protocol:
    """Interface a dissemination protocol implements (one instance per run).

    The same instance serves every node; per-node state should be keyed
    by node id.  Methods receive a :class:`NodeApi` scoped to the node.
    """

    def on_start(self, node: NodeId, api: "NodeApi") -> None:
        """Called once per alive node at its start time."""

    def on_message(
        self, node: NodeId, payload: Any, sender: NodeId, api: "NodeApi"
    ) -> None:
        """Called on each delivered message."""

    def on_timer(self, node: NodeId, tag: Any, api: "NodeApi") -> None:
        """Called when a timer set via :meth:`NodeApi.set_timer` fires."""


@dataclass
class NetworkStats:
    """Counters the network maintains during a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    per_node_sent: Dict[NodeId, int] = field(default_factory=dict)

    def as_counters(self) -> Dict[str, int]:
        """The totals under their telemetry counter names.

        Harvested once per finished run by ``obs.record_network`` —
        the simulator hot path carries no per-message instrumentation.
        """
        return {
            "net.send": self.messages_sent,
            "net.deliver": self.messages_delivered,
            "net.drop": self.messages_dropped,
        }


class NodeApi:
    """The capabilities a protocol instance has at one node."""

    def __init__(self, network: "Network", node: NodeId) -> None:
        self._network = network
        self._node = node

    @property
    def node(self) -> NodeId:
        """The node this API is scoped to."""
        return self._node

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._network.simulator.now

    def neighbors(self) -> List[NodeId]:
        """Topology neighbours (alive or not — a real process cannot tell)."""
        return sorted(self._network.graph.neighbors(self._node), key=repr)

    def send(self, to: NodeId, payload: Any) -> None:
        """Send a message over the link to ``to``.

        Raises
        ------
        ProtocolError
            If ``to`` is not a topology neighbour (LHG flooding is
            neighbour-to-neighbour only).
        """
        self._network.transmit(self._node, to, payload)

    def set_timer(self, delay: float, tag: Any) -> None:
        """Schedule ``on_timer(node, tag)`` after ``delay`` time units."""
        self._network.set_timer(self._node, delay, tag)


class Network:
    """Simulated crash-prone message-passing network over a topology.

    Parameters
    ----------
    graph:
        The (static) topology — any
        :class:`~repro.graphs.oracle.NeighborOracle` (a dict-of-sets
        ``Graph``, a compact ``CSRGraph``, or the implicit JD oracle).
        Failures hide nodes/links dynamically without mutating it.
    simulator:
        The event engine driving the run.
    latency:
        Per-message latency model; defaults to one unit per hop.
    fault_model:
        Optional :class:`~repro.flooding.faults.FaultModel` consulted on
        every transmission; can drop, duplicate, or extra-delay copies.
        Composes with ``loss_rate`` (the legacy i.i.d. loss is applied
        first).
    """

    def __init__(
        self,
        graph: NeighborOracle,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
        fault_model: Optional[FaultModel] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(
                f"loss rate must be in [0, 1), got {loss_rate}"
            )
        self.graph = graph
        self.simulator = simulator
        self.latency = latency or ConstantLatency(1.0)
        self.loss_rate = loss_rate
        self._loss_rng = random.Random(loss_seed)
        self.fault_model = fault_model
        self.stats = NetworkStats()
        self._protocol: Optional[Protocol] = None
        self._crashed: Set[NodeId] = set()
        self._dead_links: Set[frozenset] = set()
        self._apis: Dict[NodeId, NodeApi] = {}
        self.delivery_times: Dict[NodeId, float] = {}
        self._observers: List[Any] = []

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def add_observer(self, observer: Any) -> None:
        """Register an event observer (e.g. a
        :class:`~repro.flooding.trace.TraceCollector`).

        Observers receive ``observer(kind, time, **details)`` calls for
        kinds ``"send"``, ``"deliver"``, ``"drop"``, ``"crash"``,
        ``"recover"``, ``"link-down"`` and ``"link-up"``.  Observation
        never alters the simulation.
        """
        self._observers.append(observer)

    def _notify(self, kind: str, **details: Any) -> None:
        if self._observers:
            now = self.simulator.now
            for observer in self._observers:
                observer(kind, now, **details)

    # ------------------------------------------------------------------
    # Failure state
    # ------------------------------------------------------------------

    def crash_node(self, node: NodeId) -> None:
        """Crash-stop ``node`` effective immediately.

        Idempotent: crashing an already-crashed node is a no-op (no
        duplicate ``crash`` event reaches observers).
        """
        if node in self._crashed:
            return
        self._crashed.add(node)
        self._notify("crash", node=node)

    def recover_node(self, node: NodeId) -> None:
        """Bring a crashed ``node`` back up (no-op if it is alive).

        The node resumes with whatever protocol state it had — the
        crash-recovery model, not a fresh join.  Messages and timers
        that targeted it while down stay lost.
        """
        if node not in self._crashed:
            return
        self._crashed.discard(node)
        self._notify("recover", node=node)

    def fail_link(self, u: NodeId, v: NodeId) -> None:
        """Silently kill the link (u, v) in both directions.

        Idempotent: re-failing a dead link is a no-op.
        """
        key = edge_key(u, v)
        if key in self._dead_links:
            return
        self._dead_links.add(key)
        self._notify("link-down", u=u, v=v)

    def restore_link(self, u: NodeId, v: NodeId) -> None:
        """Bring a failed link back up (no-op if it is already up).

        Messages dropped while the link was down stay lost; traffic
        sent after restoration flows normally.
        """
        key = edge_key(u, v)
        if key not in self._dead_links:
            return
        self._dead_links.discard(key)
        self._notify("link-up", u=u, v=v)

    def is_alive(self, node: NodeId) -> bool:
        """Whether ``node`` is currently up."""
        return node not in self._crashed

    def is_link_up(self, u: NodeId, v: NodeId) -> bool:
        """Whether the link (u, v) currently carries traffic."""
        return edge_key(u, v) not in self._dead_links

    @property
    def crashed_nodes(self) -> Set[NodeId]:
        """Snapshot of crashed node ids."""
        return set(self._crashed)

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------

    def attach(self, protocol: Protocol, start_nodes: Optional[List[NodeId]] = None) -> None:
        """Install a protocol and schedule ``on_start`` for the given nodes.

        ``start_nodes`` defaults to every node; starts fire at time 0.

        Raises
        ------
        SimulationError
            If a protocol is already attached.
        """
        if self._protocol is not None:
            raise SimulationError("a protocol is already attached to this network")
        self._protocol = protocol
        targets = start_nodes if start_nodes is not None else oracle_nodes(self.graph)
        for node in targets:
            self._apis[node] = NodeApi(self, node)
            self.simulator.schedule(
                0.0, self._make_start(node), label=f"start:{node!r}"
            )

    def _api(self, node: NodeId) -> NodeApi:
        api = self._apis.get(node)
        if api is None:
            api = NodeApi(self, node)
            self._apis[node] = api
        return api

    def _make_start(self, node: NodeId):
        def fire() -> None:
            if self.is_alive(node) and self._protocol is not None:
                self._protocol.on_start(node, self._api(node))

        return fire

    def transmit(self, sender: NodeId, receiver: NodeId, payload: Any) -> None:
        """Queue a message for delivery (called via :meth:`NodeApi.send`).

        A message is dropped if the link is/was killed, or if the sender
        crashed before the call, or the receiver is down at *delivery*
        time (crash-stop semantics on both ends).

        Raises
        ------
        ProtocolError
            If ``receiver`` is not adjacent to ``sender`` in the topology.
        """
        if not oracle_has_edge(self.graph, sender, receiver):
            raise ProtocolError(
                f"{sender!r} tried to send to non-neighbour {receiver!r}"
            )
        if not self.is_alive(sender) or not self.is_link_up(sender, receiver):
            self.stats.messages_dropped += 1
            self._notify(
                "drop", sender=sender, receiver=receiver, reason="dead-endpoint"
            )
            return
        if self.loss_rate and self._loss_rng.random() < self.loss_rate:
            # independent per-message loss; the message is "sent" (the
            # sender pays for it) but never delivered
            self.stats.messages_sent += 1
            self.stats.per_node_sent[sender] = (
                self.stats.per_node_sent.get(sender, 0) + 1
            )
            self.stats.messages_dropped += 1
            self._notify("send", sender=sender, receiver=receiver, payload=payload)
            self._notify("drop", sender=sender, receiver=receiver, reason="loss")
            return
        self.stats.messages_sent += 1
        self.stats.per_node_sent[sender] = (
            self.stats.per_node_sent.get(sender, 0) + 1
        )
        self._notify("send", sender=sender, receiver=receiver, payload=payload)
        if self.fault_model is not None:
            # one extra-delay entry per copy to deliver; [] = dropped
            copies = self.fault_model.copies(sender, receiver)
        else:
            copies = (0.0,)
        if not copies:
            self.stats.messages_dropped += 1
            self._notify("drop", sender=sender, receiver=receiver, reason="fault")
            return
        delay = self.latency.sample_at(sender, receiver, self.simulator.now)

        def deliver() -> None:
            if not self.is_alive(receiver) or not self.is_link_up(sender, receiver):
                self.stats.messages_dropped += 1
                self._notify(
                    "drop", sender=sender, receiver=receiver, reason="dead-receiver"
                )
                return
            self.stats.messages_delivered += 1
            self._notify("deliver", sender=sender, receiver=receiver, payload=payload)
            assert self._protocol is not None
            self._protocol.on_message(receiver, payload, sender, self._api(receiver))

        for extra in copies:
            if extra < 0:
                raise SimulationError(f"fault-model delay must be >= 0, got {extra}")
            self.simulator.schedule_after(
                delay + extra, deliver, label=f"msg:{sender!r}->{receiver!r}"
            )

    def set_timer(self, node: NodeId, delay: float, tag: Any) -> None:
        """Schedule a protocol timer at ``node``."""

        def fire() -> None:
            if self.is_alive(node) and self._protocol is not None:
                self._protocol.on_timer(node, tag, self._api(node))

        self.simulator.schedule_after(delay, fire, label=f"timer:{node!r}:{tag!r}")

    def mark_delivered(self, node: NodeId) -> None:
        """Record first payload delivery at ``node`` (protocols call this)."""
        self.delivery_times.setdefault(node, self.simulator.now)
