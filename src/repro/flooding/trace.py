"""Execution tracing: record and render what a protocol actually did.

Attach a :class:`TraceCollector` to a network
(``network.add_observer(trace)``) and every send/deliver/drop/crash
event lands in an ordered, queryable record.  Useful for

* debugging protocols ("who forwarded what to whom, and when?"),
* teaching (render the first rounds of a flood as a timeline),
* white-box tests (assert a protocol *never* sent after some event).

Observation is strictly passive — collectors cannot perturb the
simulation, and tracing a run leaves its results bit-identical.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

NodeId = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One observed network event.

    ``kind`` is ``"send"``, ``"deliver"``, ``"drop"``, ``"crash"`` or
    ``"link-down"``; the relevant ids sit in ``sender``/``receiver``/
    ``node``; ``detail`` carries the drop reason or payload repr.
    """

    kind: str
    time: float
    sender: Optional[NodeId] = None
    receiver: Optional[NodeId] = None
    node: Optional[NodeId] = None
    detail: str = ""


class TraceCollector:
    """Collects network events in order (see module docstring).

    Parameters
    ----------
    keep_payloads:
        Record ``repr(payload)`` on send/deliver events (off by default
        to keep traces light).
    limit:
        Hard cap on stored events; beyond it new events are counted but
        not stored (``truncated`` reports how many).
    """

    def __init__(self, keep_payloads: bool = False, limit: int = 100_000) -> None:
        self.keep_payloads = keep_payloads
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.truncated = 0
        self.observed: "Counter[str]" = Counter()

    def __call__(self, kind: str, time: float, **details: Any) -> None:
        self.observed[kind] += 1
        if len(self.events) >= self.limit:
            self.truncated += 1
            return
        detail = ""
        if kind == "drop":
            detail = details.get("reason", "")
        elif self.keep_payloads and "payload" in details:
            detail = repr(details["payload"])
        self.events.append(
            TraceEvent(
                kind=kind,
                time=time,
                sender=details.get("sender"),
                receiver=details.get("receiver"),
                node=details.get("node") or details.get("u"),
                detail=detail,
            )
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    @property
    def truncated_events(self) -> int:
        """Events observed but not stored because ``limit`` was reached."""
        return self.truncated

    def counts(self) -> Dict[str, int]:
        """*Stored* event counts per kind.

        Past ``limit`` these undercount what actually happened; compare
        with :meth:`observed_counts` (the full tally) and check
        :attr:`truncated_events` before trusting a saturated trace.
        """
        return dict(Counter(e.kind for e in self.events))

    def observed_counts(self) -> Dict[str, int]:
        """Per-kind counts of *every* observed event, stored or not."""
        return dict(self.observed)

    def summary(self) -> str:
        """One line: observed totals, with the truncated share called out."""
        total = sum(self.observed.values())
        bits = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.observed.items())
        )
        line = f"{total} events ({bits})"
        if self.truncated:
            line += (
                f"; {self.truncated} beyond the {self.limit}-event"
                f" storage limit (counted, not stored)"
            )
        return line

    def messages_between(
        self, sender: NodeId, receiver: NodeId
    ) -> List[TraceEvent]:
        """Send events from ``sender`` to ``receiver``, in order."""
        return [
            e
            for e in self.events
            if e.kind == "send" and e.sender == sender and e.receiver == receiver
        ]

    def first(self, kind: str) -> Optional[TraceEvent]:
        """Earliest event of a kind, or ``None``."""
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def activity_histogram(self, bucket: float = 1.0) -> Dict[float, int]:
        """Sends per time bucket — the traffic profile of the run.

        Raises
        ------
        ValueError
            If ``bucket`` is not positive.
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        histogram: Dict[float, int] = {}
        for event in self.events:
            if event.kind == "send":
                slot = int(event.time / bucket) * bucket
                histogram[slot] = histogram.get(slot, 0) + 1
        return dict(sorted(histogram.items()))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def export_events(self) -> List[Dict[str, Any]]:
        """The trace as JSON-safe dicts (for the JSONL telemetry log).

        One record per stored event, followed — when the collector hit
        its ``limit`` — by a trailing
        ``{"kind": "trace-truncated", "count": N, "observed": {...}}``
        record, so a saturated trace can never silently pass for a
        complete one.
        """
        records: List[Dict[str, Any]] = [
            {
                "kind": event.kind,
                "time": event.time,
                "sender": event.sender,
                "receiver": event.receiver,
                "node": event.node,
                "detail": event.detail,
            }
            for event in self.events
        ]
        if self.truncated:
            records.append(
                {
                    "kind": "trace-truncated",
                    "count": self.truncated,
                    "observed": self.observed_counts(),
                }
            )
        return records

    def write_jsonl(self, path: str) -> int:
        """Write :meth:`export_events` to ``path``; return record count."""
        import json

        records = self.export_events()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
        return len(records)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_timeline(self, limit: int = 40) -> str:
        """First ``limit`` events as an indented text timeline."""
        lines = []
        for event in self.events[:limit]:
            if event.kind in ("send", "deliver", "drop"):
                arrow = {"send": "->", "deliver": "=>", "drop": "x>"}[event.kind]
                suffix = f"  ({event.detail})" if event.detail else ""
                lines.append(
                    f"t={event.time:<8g} {event.kind:<7} "
                    f"{event.sender!r} {arrow} {event.receiver!r}{suffix}"
                )
            else:
                lines.append(
                    f"t={event.time:<8g} {event.kind:<7} {event.node!r}"
                )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.truncated:
            lines.append(
                f"... {self.truncated} further event(s) observed beyond the "
                f"{self.limit}-event storage limit (counted, not stored)"
            )
        return "\n".join(lines)
