"""Run metrics: coverage, latency, message cost.

A :class:`FloodResult` is the unit every experiment aggregates.  The key
distinction is **coverage vs reachable coverage**: with f ≥ k failures a
k-connected graph may legitimately partition, so a protocol should be
judged against the nodes that *remained reachable* from the source in
the survivor graph, not against the pre-failure population.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set

from repro.graphs.oracle import NeighborOracle, oracle_has_node
from repro.graphs.traversal import bfs_levels

NodeId = Hashable


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one dissemination run.

    Attributes
    ----------
    protocol:
        Protocol name ("flood", "gossip", "treecast", …).
    n:
        Pre-failure node count.
    alive:
        Nodes alive for the whole run (n − crashes).
    reachable:
        Alive nodes reachable from the source in the survivor topology —
        the fair denominator for delivery ratio.
    covered:
        Alive nodes that received the payload.
    messages:
        Total messages sent on links (including those later dropped).
    completion_time:
        Simulated time of the last delivery (``None`` if nothing beyond
        the source was covered).
    delivery_times:
        Per-node first-delivery times.
    """

    protocol: str
    n: int
    alive: int
    reachable: int
    covered: int
    messages: int
    completion_time: Optional[float]
    delivery_times: Dict[NodeId, float] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        """covered / reachable (1.0 when nothing was reachable)."""
        if self.reachable == 0:
            return 1.0
        return self.covered / self.reachable

    @property
    def absolute_delivery_ratio(self) -> float:
        """covered / alive — the pessimistic, partition-blaming ratio."""
        if self.alive == 0:
            return 1.0
        return self.covered / self.alive

    @property
    def fully_covered(self) -> bool:
        """True when every reachable alive node got the payload."""
        return self.covered >= self.reachable

    def latency_percentile(self, fraction: float) -> Optional[float]:
        """Delivery-time percentile over covered nodes (``0 < fraction ≤ 1``)."""
        if not self.delivery_times:
            return None
        times = sorted(self.delivery_times.values())
        index = min(len(times) - 1, max(0, int(fraction * len(times)) - 1))
        return times[index]

    def mean_latency(self) -> Optional[float]:
        """Mean first-delivery time over covered nodes."""
        if not self.delivery_times:
            return None
        return statistics.fmean(self.delivery_times.values())


def reachable_from(graph: NeighborOracle, source: NodeId) -> Set[NodeId]:
    """Nodes reachable from ``source`` in ``graph`` (source included).

    Accepts any :class:`~repro.graphs.oracle.NeighborOracle`.  Returns
    the empty set when the source itself is gone.
    """
    if not oracle_has_node(graph, source):
        return set()
    return set(bfs_levels(graph, source))


@dataclass
class ResultAggregate:
    """Statistics over repeated seeded runs of one configuration."""

    results: List[FloodResult] = field(default_factory=list)

    def add(self, result: FloodResult) -> None:
        """Record one run."""
        self.results.append(result)

    @property
    def runs(self) -> int:
        """Number of recorded runs."""
        return len(self.results)

    def mean_delivery_ratio(self) -> float:
        """Average delivery ratio across runs."""
        if not self.results:
            return 0.0
        return statistics.fmean(r.delivery_ratio for r in self.results)

    def min_delivery_ratio(self) -> float:
        """Worst delivery ratio across runs."""
        if not self.results:
            return 0.0
        return min(r.delivery_ratio for r in self.results)

    def full_coverage_fraction(self) -> float:
        """Fraction of runs that covered every reachable node."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.fully_covered) / len(self.results)

    def mean_messages(self) -> float:
        """Average message count across runs."""
        if not self.results:
            return 0.0
        return statistics.fmean(r.messages for r in self.results)

    def mean_completion_time(self) -> Optional[float]:
        """Average completion time over runs that completed at all."""
        times = [
            r.completion_time for r in self.results if r.completion_time is not None
        ]
        return statistics.fmean(times) if times else None

    def max_completion_time(self) -> Optional[float]:
        """Worst completion time over runs that completed at all."""
        times = [
            r.completion_time for r in self.results if r.completion_time is not None
        ]
        return max(times) if times else None
