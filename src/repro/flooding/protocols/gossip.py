"""Round-based push gossip — the probabilistic baseline.

The paper's introduction contrasts deterministic flooding on k-connected
graphs with gossip on random graphs: gossip needs no topology but
delivers only *with high probability* and pays for its robustness with
redundant transmissions.  This implementation is the classic push
variant:

* time is divided into rounds of fixed length;
* every infected node sends the rumour to ``fanout`` random neighbours
  each round, for ``rounds`` rounds.

On an LHG the neighbour set is the topology; on a complete graph this
degenerates to classic uniform gossip.  Seeded, hence reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Hashable, Set

from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable

_ROUND_TAG = "gossip-round"


class PushGossipProtocol(Protocol):
    """Push gossip from a single source over the topology's links.

    Parameters
    ----------
    network:
        The simulated network.
    source:
        Rumour origin.
    fanout:
        Neighbours contacted per round (clipped to the degree).
    rounds:
        Number of rounds each infected node actively gossips.
    round_length:
        Simulated time per round; keep ≥ the max link latency so rounds
        do not overlap.
    seed:
        RNG seed for target selection.
    """

    def __init__(
        self,
        network: Network,
        source: NodeId,
        fanout: int = 2,
        rounds: int = 16,
        round_length: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.source = source
        self.fanout = fanout
        self.rounds = rounds
        self.round_length = round_length
        self.seen: Set[NodeId] = set()
        self._rng = random.Random(seed)
        self._rounds_left: dict = {}

    def _infect(self, node: NodeId, api: NodeApi) -> None:
        if node in self.seen:
            return
        self.seen.add(node)
        self.network.mark_delivered(node)
        self._rounds_left[node] = self.rounds
        api.set_timer(0.0, _ROUND_TAG)

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node == self.source:
            self._infect(node, api)

    def on_message(
        self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi
    ) -> None:
        self._infect(node, api)

    def on_timer(self, node: NodeId, tag: Any, api: NodeApi) -> None:
        if tag != _ROUND_TAG or self._rounds_left.get(node, 0) <= 0:
            return
        self._rounds_left[node] -= 1
        neighbors = api.neighbors()
        if neighbors:
            picks = self._rng.sample(
                neighbors, min(self.fanout, len(neighbors))
            )
            for target in picks:
                api.send(target, "rumour")
        if self._rounds_left[node] > 0:
            api.set_timer(self.round_length, _ROUND_TAG)
