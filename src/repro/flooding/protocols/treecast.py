"""Spanning-tree broadcast — the cheap-but-fragile baseline.

Dissemination over a precomputed spanning tree sends exactly n − 1
messages (the theoretical minimum) but any single crash on an interior
tree node partitions the broadcast — the fragility that motivates the
paper's k-connected topologies.  The reliability experiment (F3) shows
tree-cast losing coverage at f = 1 while flooding on an LHG holds full
coverage up to f = k − 1.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Set

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_parents

NodeId = Hashable


class TreeCastProtocol(Protocol):
    """Broadcast along a BFS spanning tree rooted at the source.

    The tree is computed from the *full* topology at setup time —
    deliberately failure-oblivious, modelling a tree built before the
    failures strike (rebuilding trees under churn is exactly the cost
    the paper's approach avoids).

    Raises
    ------
    ProtocolError
        If the source is not in the graph.
    """

    def __init__(self, network: Network, graph: Graph, source: NodeId) -> None:
        if not graph.has_node(source):
            raise ProtocolError(f"source {source!r} not in the topology")
        self.network = network
        self.source = source
        parents = bfs_parents(graph, source)
        self.children: Dict[NodeId, List[NodeId]] = {}
        for child, parent in parents.items():
            if parent is not None:
                self.children.setdefault(parent, []).append(child)
        for child_list in self.children.values():
            child_list.sort(key=repr)
        self.seen: Set[NodeId] = set()

    def _deliver_and_forward(self, node: NodeId, api: NodeApi) -> None:
        if node in self.seen:
            return
        self.seen.add(node)
        self.network.mark_delivered(node)
        for child in self.children.get(node, []):
            api.send(child, "tree-data")

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node == self.source:
            self._deliver_and_forward(node, api)

    def on_message(
        self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi
    ) -> None:
        self._deliver_and_forward(node, api)
