"""Dissemination protocols: flooding plus the related-work baselines."""

from repro.flooding.protocols.arq import ArqAck, ArqData, ArqProtocol
from repro.flooding.protocols.flood import (
    FloodMessage,
    FloodProtocol,
    MultiSourceFloodProtocol,
)
from repro.flooding.protocols.gossip import PushGossipProtocol
from repro.flooding.protocols.heartbeat import (
    DetectionReport,
    HeartbeatProtocol,
    Suspicion,
)
from repro.flooding.protocols.reliable import ReliableFloodProtocol
from repro.flooding.protocols.treecast import TreeCastProtocol
from repro.flooding.protocols.unicast import (
    RedundantUnicast,
    RoutedMessage,
    SourceRoutedUnicast,
)

__all__ = [
    "ArqAck",
    "ArqData",
    "ArqProtocol",
    "DetectionReport",
    "FloodMessage",
    "FloodProtocol",
    "HeartbeatProtocol",
    "MultiSourceFloodProtocol",
    "PushGossipProtocol",
    "RedundantUnicast",
    "ReliableFloodProtocol",
    "RoutedMessage",
    "SourceRoutedUnicast",
    "Suspicion",
    "TreeCastProtocol",
]
