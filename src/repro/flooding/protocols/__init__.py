"""Dissemination protocols: flooding plus the related-work baselines."""

from repro.flooding.protocols.flood import (
    FloodMessage,
    FloodProtocol,
    MultiSourceFloodProtocol,
)
from repro.flooding.protocols.gossip import PushGossipProtocol
from repro.flooding.protocols.heartbeat import (
    DetectionReport,
    HeartbeatProtocol,
    Suspicion,
)
from repro.flooding.protocols.treecast import TreeCastProtocol
from repro.flooding.protocols.unicast import (
    RedundantUnicast,
    RoutedMessage,
    SourceRoutedUnicast,
)

__all__ = [
    "DetectionReport",
    "FloodMessage",
    "FloodProtocol",
    "HeartbeatProtocol",
    "MultiSourceFloodProtocol",
    "PushGossipProtocol",
    "RedundantUnicast",
    "RoutedMessage",
    "SourceRoutedUnicast",
    "Suspicion",
    "TreeCastProtocol",
]
