"""Deterministic flooding — the protocol LHGs are built to carry.

The protocol is the paper's one-liner: *on first receipt of a message,
forward it to every neighbour except the one it came from*.  On a
topology with m links a failure-free flood sends at most 2m − (n − 1)
messages, so link-minimal graphs (Property 3) directly minimise the
message bill; on a graph of diameter D with unit latencies, full
coverage happens at time ≤ D, so Property 4 bounds the latency.

The duplicate-suppression state is one bit per (node, message) pair —
the whole point of flooding's robustness: any alive path delivers, no
routing state to repair after failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable


@dataclass(frozen=True)
class FloodMessage:
    """A flooded payload, identified by (origin, message_id)."""

    origin: NodeId
    message_id: int
    payload: Any = None


class FloodProtocol(Protocol):
    """Classic deterministic flooding from a single source.

    Parameters
    ----------
    network:
        The network (used to record delivery times in its metrics).
    source:
        The origin node; it floods at its start event.
    payload:
        Opaque payload carried by the message.

    Notes
    -----
    ``seen`` is exposed for the metrics layer: a node is *covered* when
    it has seen the message (the source counts).
    """

    def __init__(self, network: Network, source: NodeId, payload: Any = "data") -> None:
        self.network = network
        self.source = source
        self.message = FloodMessage(origin=source, message_id=0, payload=payload)
        self.seen: Set[NodeId] = set()

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node != self.source:
            return
        self.seen.add(node)
        self.network.mark_delivered(node)
        for neighbor in api.neighbors():
            api.send(neighbor, self.message)

    def on_message(
        self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi
    ) -> None:
        if node in self.seen:
            return
        self.seen.add(node)
        self.network.mark_delivered(node)
        for neighbor in api.neighbors():
            if neighbor != sender:
                api.send(neighbor, payload)


class StreamFloodProtocol(Protocol):
    """One source floods a back-to-back stream of ``count`` messages.

    Used by the throughput experiment (T6): under finite link bandwidth
    the messages pipeline down the topology, so the *makespan* (last
    delivery of the last message) measures sustained broadcast
    throughput, not just one-shot latency.

    ``interval`` staggers the injections (0 = all at start).
    """

    def __init__(
        self, network: Network, source: NodeId, count: int, interval: float = 0.0
    ) -> None:
        self.network = network
        self.source = source
        self.count = count
        self.interval = interval
        self.seen: Dict[int, Set[NodeId]] = {}
        self.last_delivery: Dict[int, float] = {}

    def _deliver(self, node: NodeId, message: FloodMessage, api: NodeApi) -> bool:
        seen = self.seen.setdefault(message.message_id, set())
        if node in seen:
            return False
        seen.add(node)
        self.last_delivery[message.message_id] = api.now
        return True

    def _inject(self, message_id: int, api: NodeApi) -> None:
        message = FloodMessage(origin=self.source, message_id=message_id)
        if self._deliver(self.source, message, api):
            for neighbor in api.neighbors():
                api.send(neighbor, message)

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node != self.source:
            return
        if self.interval <= 0:
            for message_id in range(self.count):
                self._inject(message_id, api)
        else:
            self._inject(0, api)
            if self.count > 1:
                api.set_timer(self.interval, 1)

    def on_timer(self, node: NodeId, tag, api: NodeApi) -> None:
        message_id = int(tag)
        self._inject(message_id, api)
        if message_id + 1 < self.count:
            api.set_timer(self.interval, message_id + 1)

    def on_message(self, node: NodeId, payload, sender: NodeId, api: NodeApi) -> None:
        if self._deliver(node, payload, api):
            for neighbor in api.neighbors():
                if neighbor != sender:
                    api.send(neighbor, payload)

    def makespan(self) -> Optional[float]:
        """Time of the last delivery of any message (None before running)."""
        return max(self.last_delivery.values()) if self.last_delivery else None

    def fully_covered(self, n: int) -> bool:
        """Did every message reach all ``n`` nodes?"""
        return len(self.seen) == self.count and all(
            len(nodes) == n for nodes in self.seen.values()
        )


class MultiSourceFloodProtocol(Protocol):
    """Flooding of several concurrent messages (stress/overhead tests).

    Each source floods its own message; duplicate suppression is per
    message.  Used by the message-overhead experiment to confirm cost
    scales linearly with both message count and edge count.
    """

    def __init__(self, network: Network, sources: Tuple[NodeId, ...]) -> None:
        self.network = network
        self.sources = sources
        self.seen: Dict[Tuple[NodeId, int], Set[NodeId]] = {}
        self.delivery_times: Dict[Tuple[NodeId, int], Dict[NodeId, float]] = {}

    def _key(self, message: FloodMessage) -> Tuple[NodeId, int]:
        return (message.origin, message.message_id)

    def _deliver(self, node: NodeId, message: FloodMessage, api: NodeApi) -> bool:
        key = self._key(message)
        seen = self.seen.setdefault(key, set())
        if node in seen:
            return False
        seen.add(node)
        self.delivery_times.setdefault(key, {})[node] = api.now
        return True

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node not in self.sources:
            return
        message = FloodMessage(origin=node, message_id=self.sources.index(node))
        if self._deliver(node, message, api):
            for neighbor in api.neighbors():
                api.send(neighbor, message)

    def on_message(
        self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi
    ) -> None:
        if self._deliver(node, payload, api):
            for neighbor in api.neighbors():
                if neighbor != sender:
                    api.send(neighbor, payload)
