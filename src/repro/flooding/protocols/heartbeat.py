"""Heartbeat failure detection over the LHG's links.

The self-healing loop (experiment F8) needs crashes to be *detected*
before they can be repaired.  This protocol closes that loop inside the
simulator: every node periodically heartbeats its topology neighbours
and suspects a neighbour whose heartbeat has been silent longer than a
timeout — the classic eventually-perfect local failure detector, run
over exactly the links the LHG already maintains (no extra topology).

Because every node has ≥ k neighbours, a real crash is observed by ≥ k
independent detectors — the same redundancy that protects flooding also
makes detection robust to individual message loss.

Quality metrics (collected per run):

* **detection time** — crash instant → first/last neighbour suspicion;
* **completeness** — did every alive neighbour of a crashed node
  eventually suspect it?
* **accuracy** — false suspicions (alive nodes suspected), which appear
  when the timeout is tight relative to the latency tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable

_BEAT_TAG = "hb-send"
_CHECK_TAG = "hb-check"


@dataclass
class Suspicion:
    """One suspicion event: ``observer`` suspected ``subject`` at ``time``."""

    observer: NodeId
    subject: NodeId
    time: float


class HeartbeatProtocol(Protocol):
    """Periodic heartbeats with timeout-based suspicion.

    Parameters
    ----------
    network:
        The simulated network.
    period:
        Heartbeat interval.
    timeout:
        Silence threshold; must exceed ``period`` or every node is
        immediately suspected between beats.
    horizon:
        Nodes stop beating/checking after this simulated time, bounding
        the run (the detector itself is perpetual in a real system).

    Raises
    ------
    ProtocolError
        If ``timeout <= period`` or parameters are non-positive.
    """

    def __init__(
        self,
        network: Network,
        period: float = 1.0,
        timeout: float = 3.5,
        horizon: float = 40.0,
    ) -> None:
        if period <= 0 or timeout <= 0 or horizon <= 0:
            raise ProtocolError("period, timeout and horizon must be positive")
        if timeout <= period:
            raise ProtocolError(
                f"timeout ({timeout}) must exceed the period ({period})"
            )
        self.network = network
        self.period = period
        self.timeout = timeout
        self.horizon = horizon
        self.last_heard: Dict[Tuple[NodeId, NodeId], float] = {}
        self.suspected: Dict[NodeId, Set[NodeId]] = {}
        self.suspicions: List[Suspicion] = []
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Protocol callbacks
    # ------------------------------------------------------------------

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        self.suspected[node] = set()
        for neighbor in api.neighbors():
            # grace: pretend we heard everyone at start
            self.last_heard[(node, neighbor)] = api.now
        api.set_timer(0.0, _BEAT_TAG)
        api.set_timer(self.timeout, _CHECK_TAG)

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if payload != "heartbeat":
            raise ProtocolError(f"unexpected payload {payload!r}")
        self.last_heard[(node, sender)] = api.now
        if sender in self.suspected.get(node, set()):
            # eventually-perfect behaviour: revoke a false suspicion
            self.suspected[node].discard(sender)

    def on_timer(self, node: NodeId, tag: Any, api: NodeApi) -> None:
        if api.now > self.horizon:
            return
        if tag == _BEAT_TAG:
            for neighbor in api.neighbors():
                api.send(neighbor, "heartbeat")
                self.heartbeats_sent += 1
            api.set_timer(self.period, _BEAT_TAG)
        elif tag == _CHECK_TAG:
            for neighbor in api.neighbors():
                silent_for = api.now - self.last_heard.get(
                    (node, neighbor), 0.0
                )
                if silent_for > self.timeout and neighbor not in self.suspected[node]:
                    self.suspected[node].add(neighbor)
                    self.suspicions.append(
                        Suspicion(observer=node, subject=neighbor, time=api.now)
                    )
            api.set_timer(self.period, _CHECK_TAG)

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------

    def suspicion_times(self, subject: NodeId) -> List[float]:
        """Times at which (still-alive) observers suspected ``subject``."""
        return sorted(
            s.time
            for s in self.suspicions
            if s.subject == subject and self.network.is_alive(s.observer)
        )

    def detection_report(
        self, crashed: Set[NodeId], crash_time: float
    ) -> "DetectionReport":
        """Summarise detection quality for a crash set at ``crash_time``."""
        detection_delays: List[float] = []
        missed_observers = 0
        for victim in crashed:
            observers = [
                v
                for v in self.network.graph.neighbors(victim)
                if self.network.is_alive(v)
            ]
            suspected_by = {
                s.observer
                for s in self.suspicions
                if s.subject == victim and s.observer in observers
            }
            missed_observers += len(set(observers) - suspected_by)
            for s in self.suspicions:
                if s.subject == victim and s.observer in observers:
                    detection_delays.append(s.time - crash_time)
        false_suspicions = sum(
            1
            for s in self.suspicions
            if s.subject not in crashed and self.network.is_alive(s.subject)
        )
        return DetectionReport(
            crashed=frozenset(crashed),
            detection_delays=tuple(sorted(detection_delays)),
            missed_observers=missed_observers,
            false_suspicions=false_suspicions,
            heartbeats_sent=self.heartbeats_sent,
        )


@dataclass(frozen=True)
class DetectionReport:
    """Quality of one failure-detection run."""

    crashed: frozenset
    detection_delays: Tuple[float, ...]
    missed_observers: int
    false_suspicions: int
    heartbeats_sent: int

    @property
    def complete(self) -> bool:
        """Every alive neighbour of every crashed node raised a suspicion."""
        return self.missed_observers == 0

    @property
    def accurate(self) -> bool:
        """No alive node was (durably) suspected."""
        return self.false_suspicions == 0

    @property
    def worst_detection_delay(self) -> Optional[float]:
        """Slowest neighbour's detection delay, or ``None`` if undetected."""
        return self.detection_delays[-1] if self.detection_delays else None

    @property
    def best_detection_delay(self) -> Optional[float]:
        """Fastest neighbour's detection delay."""
        return self.detection_delays[0] if self.detection_delays else None
