"""View-change membership: detect, decide, disseminate — all in-band.

The autonomic examples orchestrate detection and repair from *outside*
the simulator.  This protocol runs the whole membership pipeline as
messages over the LHG itself:

1. **detect** — every node heartbeats its topology neighbours and
   suspects on silence (the local detector of
   :mod:`repro.flooding.protocols.heartbeat`);
2. **report** — a first local suspicion is flooded as a SUSPECT notice,
   so it reaches the coordinator over any of the k disjoint paths —
   crash-tolerant reporting for free;
3. **decide** — the coordinator (a designated member) collects
   suspicions and, after a short quiet period that batches a burst,
   announces view v+1 = members − suspected;
4. **disseminate** — the NEW-VIEW announcement floods over the *old*
   topology; since a burst of ≤ k−1 crashes cannot disconnect it, every
   surviving member adopts the view.

The measurable outcome — crash instant → last adoption — is the
*membership convergence latency*, the operational number a
view-oriented system (virtual synchrony, primary-backup, etc.) cares
about.  Experiment F11 charts it against the detection timeout and n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable

_BEAT = "vc-beat"
_CHECK = "vc-check"
_DECIDE = "vc-decide"


@dataclass(frozen=True)
class _Heartbeat:
    pass


@dataclass(frozen=True)
class _Suspect:
    """Flooded notice: ``reporter`` suspects ``subject``."""

    subject: NodeId
    reporter: NodeId


@dataclass(frozen=True)
class NewView:
    """Flooded view announcement."""

    view_id: int
    members: FrozenSet[NodeId]


class ViewChangeProtocol(Protocol):
    """Coordinator-led view changes over a crash-prone LHG.

    Parameters
    ----------
    network:
        The simulated network (topology = the current view's LHG).
    coordinator:
        The member that decides views.  Assumed alive (coordinator
        fail-over is out of scope; a real system would rank members).
    period / timeout:
        Heartbeat interval and suspicion threshold per neighbour.
    decision_delay:
        Quiet period after the first suspicion before deciding, so one
        burst of crashes becomes one view change rather than several.
    horizon:
        Stop beating/checking after this simulated time.

    Attributes
    ----------
    adopted:
        Per node, (view id, adoption time) of the highest view seen.
    decided_at:
        When the coordinator announced the new view (None if never).
    """

    def __init__(
        self,
        network: Network,
        coordinator: NodeId,
        period: float = 1.0,
        timeout: float = 3.5,
        decision_delay: float = 2.0,
        horizon: float = 60.0,
    ) -> None:
        if timeout <= period:
            raise ProtocolError("timeout must exceed the heartbeat period")
        if decision_delay < 0:
            raise ProtocolError("decision_delay must be non-negative")
        self.network = network
        self.coordinator = coordinator
        self.period = period
        self.timeout = timeout
        self.decision_delay = decision_delay
        self.horizon = horizon

        self.last_heard: Dict[Tuple[NodeId, NodeId], float] = {}
        self.locally_suspected: Dict[NodeId, Set[NodeId]] = {}
        self.flooded: Dict[NodeId, Set[Any]] = {}
        self.coordinator_suspects: Set[NodeId] = set()
        self._decision_epoch = 0
        self.decided_at: Optional[float] = None
        self.new_view: Optional[NewView] = None
        self.adopted: Dict[NodeId, Tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # flooding helper (wave with dedup, reused for SUSPECT and NEW-VIEW)
    # ------------------------------------------------------------------

    def _flood(self, node: NodeId, item: Any, api: NodeApi, skip: Optional[NodeId] = None) -> bool:
        seen = self.flooded.setdefault(node, set())
        if item in seen:
            return False
        seen.add(item)
        for neighbor in api.neighbors():
            if neighbor != skip:
                api.send(neighbor, item)
        return True

    # ------------------------------------------------------------------

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        self.locally_suspected[node] = set()
        for neighbor in api.neighbors():
            self.last_heard[(node, neighbor)] = api.now
        api.set_timer(0.0, _BEAT)
        api.set_timer(self.timeout, _CHECK)

    def on_timer(self, node: NodeId, tag: Any, api: NodeApi) -> None:
        if isinstance(tag, tuple) and tag[0] == _DECIDE:
            # debounced: only the timer armed by the latest suspicion fires
            if tag[1] == self._decision_epoch:
                self._decide(node, api)
            return
        if api.now > self.horizon:
            return
        if tag == _BEAT:
            for neighbor in api.neighbors():
                api.send(neighbor, _Heartbeat())
            api.set_timer(self.period, _BEAT)
        elif tag == _CHECK:
            for neighbor in api.neighbors():
                silent = api.now - self.last_heard.get((node, neighbor), 0.0)
                if silent > self.timeout and neighbor not in self.locally_suspected[node]:
                    self.locally_suspected[node].add(neighbor)
                    self._report(node, neighbor, api)
            api.set_timer(self.period, _CHECK)

    def _report(self, node: NodeId, subject: NodeId, api: NodeApi) -> None:
        notice = _Suspect(subject=subject, reporter=node)
        self._flood(node, notice, api)
        if node == self.coordinator:
            self._register_suspicion(node, subject, api)

    def _register_suspicion(self, node: NodeId, subject: NodeId, api: NodeApi) -> None:
        if subject in self.coordinator_suspects:
            return
        self.coordinator_suspects.add(subject)
        if self.decided_at is None:
            # restart the quiet period so one burst yields one view
            self._decision_epoch += 1
            api.set_timer(self.decision_delay, (_DECIDE, self._decision_epoch))

    def _decide(self, node: NodeId, api: NodeApi) -> None:
        if self.decided_at is not None:
            return
        members = frozenset(
            member
            for member in self.network.graph.nodes()
            if member not in self.coordinator_suspects
        )
        self.new_view = NewView(view_id=1, members=members)
        self.decided_at = api.now
        self._adopt(node, self.new_view, api)

    def _adopt(self, node: NodeId, view: NewView, api: NodeApi) -> None:
        current = self.adopted.get(node)
        if current is None or view.view_id > current[0]:
            self.adopted[node] = (view.view_id, api.now)
        self._flood(node, view, api)

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if isinstance(payload, _Heartbeat):
            self.last_heard[(node, sender)] = api.now
            self.locally_suspected.get(node, set()).discard(sender)
        elif isinstance(payload, _Suspect):
            if self._flood(node, payload, api, skip=sender):
                if node == self.coordinator:
                    self._register_suspicion(node, payload.subject, api)
        elif isinstance(payload, NewView):
            current = self.adopted.get(node)
            is_new = self._flood(node, payload, api, skip=sender)
            if is_new and (current is None or payload.view_id > current[0]):
                self.adopted[node] = (payload.view_id, api.now)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------
    # Outcome metrics
    # ------------------------------------------------------------------

    def convergence_report(
        self, crashed: Set[NodeId], crash_time: float
    ) -> "ViewChangeReport":
        """Summarise the view change triggered by ``crashed`` at ``crash_time``."""
        survivors = [
            v for v in self.network.graph.nodes() if v not in crashed
        ]
        adopted_times = [
            self.adopted[v][1]
            for v in survivors
            if v in self.adopted and self.adopted[v][0] >= 1
        ]
        correct_membership = (
            self.new_view is not None
            and self.new_view.members == frozenset(survivors)
        )
        return ViewChangeReport(
            decided_at=self.decided_at,
            decision_delay=(
                None if self.decided_at is None else self.decided_at - crash_time
            ),
            adopters=len(adopted_times),
            survivors=len(survivors),
            last_adoption=(max(adopted_times) if adopted_times else None),
            correct_membership=correct_membership,
        )


@dataclass(frozen=True)
class ViewChangeReport:
    """Outcome of one crash-triggered view change."""

    decided_at: Optional[float]
    decision_delay: Optional[float]
    adopters: int
    survivors: int
    last_adoption: Optional[float]
    correct_membership: bool

    @property
    def converged(self) -> bool:
        """Every survivor adopted the (correct) new view."""
        return self.correct_membership and self.adopters == self.survivors
