"""Reliable flooding over lossy links: per-link ACK + retransmission.

Plain flooding already absorbs moderate loss through path redundancy
(experiment A5), but delivery is only *probabilistic* once links drop
messages.  This protocol restores the deterministic guarantee with the
classic link-layer recipe:

* every flood message carries a per-sender sequence number;
* the receiver ACKs each copy (ACKs can be lost too);
* the sender retransmits on a timeout until ACKed or a retry budget is
  exhausted.

With per-message loss probability p and r retries, a link fails to
deliver with probability p^(r+1) — driven below any target by a
logarithmic retry budget.  Experiment A7 charts delivery and overhead
vs loss for plain vs reliable flooding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable


@dataclass(frozen=True)
class _Data:
    """A flooded payload copy: (origin-sender, sequence) identifies it."""

    sequence: int
    payload: Any = "data"


@dataclass(frozen=True)
class _Ack:
    """Acknowledgement of ``sequence`` back to the sender."""

    sequence: int


_RETRY_TAG = "retry"


class ReliableFloodProtocol(Protocol):
    """Flooding with per-link stop-and-wait retransmission.

    Parameters
    ----------
    network:
        The simulated (lossy) network.
    source:
        Flood origin.
    retry_timeout:
        Wait before retransmitting an unACKed copy.  Keep above the
        round-trip time or every message is sent twice.
    max_retries:
        Retransmissions per link after the initial send; the residual
        per-link failure probability is p^(max_retries + 1).
    """

    def __init__(
        self,
        network: Network,
        source: NodeId,
        retry_timeout: float = 3.0,
        max_retries: int = 8,
    ) -> None:
        if retry_timeout <= 0 or max_retries < 0:
            raise ProtocolError("retry_timeout must be > 0 and max_retries >= 0")
        self.network = network
        self.source = source
        self.retry_timeout = retry_timeout
        self.max_retries = max_retries
        self.seen: Set[NodeId] = set()
        # per-node outbox: sequence -> (neighbour, message, retries left)
        self._outbox: Dict[Tuple[NodeId, int], Tuple[NodeId, _Data, int]] = {}
        self._next_sequence: Dict[NodeId, int] = {}
        self.data_sent = 0
        self.acks_sent = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------

    def _send_reliably(self, node: NodeId, neighbor: NodeId, api: NodeApi) -> None:
        sequence = self._next_sequence.get(node, 0)
        self._next_sequence[node] = sequence + 1
        message = _Data(sequence=sequence)
        self._outbox[(node, sequence)] = (neighbor, message, self.max_retries)
        api.send(neighbor, message)
        self.data_sent += 1
        api.set_timer(self.retry_timeout, (_RETRY_TAG, sequence))

    def _deliver(
        self, node: NodeId, api: NodeApi, exclude: Optional[NodeId] = None
    ) -> None:
        if node in self.seen:
            return
        self.seen.add(node)
        self.network.mark_delivered(node)
        for neighbor in api.neighbors():
            if neighbor != exclude:
                self._send_reliably(node, neighbor, api)

    # ------------------------------------------------------------------

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node == self.source:
            self._deliver(node, api)

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if isinstance(payload, _Data):
            api.send(sender, _Ack(sequence=payload.sequence))
            self.acks_sent += 1
            self._deliver(node, api, exclude=sender)
        elif isinstance(payload, _Ack):
            self._outbox.pop((node, payload.sequence), None)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    def on_timer(self, node: NodeId, tag: Any, api: NodeApi) -> None:
        if not (isinstance(tag, tuple) and tag[0] == _RETRY_TAG):
            return
        key = (node, tag[1])
        entry = self._outbox.get(key)
        if entry is None:
            return  # ACKed in the meantime
        neighbor, message, retries_left = entry
        if retries_left <= 0:
            del self._outbox[key]  # link presumed dead; give up
            return
        self._outbox[key] = (neighbor, message, retries_left - 1)
        api.send(neighbor, message)
        self.data_sent += 1
        self.retransmissions += 1
        api.set_timer(self.retry_timeout, tag)

    # ------------------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Data copies + ACKs put on the wire."""
        return self.data_sent + self.acks_sent
