"""A generic ARQ (automatic repeat request) layer below any protocol.

:class:`~repro.flooding.protocols.reliable.ReliableFloodProtocol` bakes
stop-and-wait retransmission *into* flooding with a fixed timeout and a
fixed retry budget — enough for i.i.d. loss, but a fixed window gives
up during long outages (a flapping link, a partition awaiting heal, a
crashed node that later recovers).  :class:`ArqProtocol` factors the
recipe out into a reusable link layer that wraps an arbitrary inner
:class:`~repro.flooding.network.Protocol`:

* every ``api.send`` the inner protocol makes is framed with a globally
  unique message id ``(sender, counter)``;
* the receiver ACKs every frame copy and delivers the inner payload
  **exactly once** per id (duplicates — retransmits or fault-model
  copies — are suppressed);
* unACKed frames are retransmitted with **exponential backoff**
  (``base_timeout`` doubling by ``backoff`` up to ``max_timeout``) and
  a per-frame retry budget, so the total retry window grows roughly
  like ``max_timeout × max_retries`` — long enough to ride out
  transient partitions that exhaust a fixed-timeout scheme.

The wrapper is transparent: the inner protocol sees ordinary
``on_start`` / ``on_message`` / ``on_timer`` callbacks and an api whose
``send`` happens to be reliable.  Wrapping ``ReliableFloodProtocol``
(the chaos campaign's "ARQ-wrapped" variant) is deliberately redundant
— the inner acks ride the ARQ layer like any payload — and is what
restores guaranteed survivor coverage under recoverable faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Set, Tuple

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable

MessageId = Tuple[NodeId, int]

_ARQ_TAG = "__arq__"


@dataclass(frozen=True)
class ArqData:
    """An ARQ frame: inner ``payload`` identified by ``msg_id``."""

    msg_id: MessageId
    payload: Any


@dataclass(frozen=True)
class ArqAck:
    """Acknowledgement of the frame ``msg_id``."""

    msg_id: MessageId


class _ArqNodeApi(NodeApi):
    """The api handed to the inner protocol: ``send`` goes through ARQ."""

    def __init__(self, arq: "ArqProtocol", network: Network, node: NodeId) -> None:
        super().__init__(network, node)
        self._arq = arq

    def send(self, to: NodeId, payload: Any) -> None:
        self._arq._send_frame(self._node, to, payload)


class ArqProtocol(Protocol):
    """Reliable-delivery wrapper around an inner protocol (see module doc).

    Parameters
    ----------
    network:
        The (lossy / flapping / recovering) network.
    inner:
        The protocol whose sends should be made reliable.
    base_timeout:
        First retransmission timeout; keep above the round-trip time.
    backoff:
        Multiplier applied to the timeout after each retransmission.
    max_timeout:
        Cap on the backed-off timeout.
    max_retries:
        Retransmissions per frame after the initial send; a frame that
        stays unACKed through the whole budget is abandoned
        (``gave_up`` counts them).
    """

    def __init__(
        self,
        network: Network,
        inner: Protocol,
        base_timeout: float = 2.5,
        backoff: float = 2.0,
        max_timeout: float = 16.0,
        max_retries: int = 10,
    ) -> None:
        if base_timeout <= 0 or max_timeout < base_timeout:
            raise ProtocolError(
                "need 0 < base_timeout <= max_timeout, got "
                f"{base_timeout} and {max_timeout}"
            )
        if backoff < 1.0 or max_retries < 0:
            raise ProtocolError("backoff must be >= 1 and max_retries >= 0")
        self.network = network
        self.inner = inner
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.max_retries = max_retries
        # frame id -> (destination, frame, retries left, current timeout)
        self._outbox: Dict[MessageId, Tuple[NodeId, ArqData, int, float]] = {}
        self._next_id: Dict[NodeId, int] = {}
        self._seen: Set[Tuple[NodeId, MessageId]] = set()
        self._apis: Dict[NodeId, _ArqNodeApi] = {}
        self.frames_sent = 0
        self.acks_sent = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.gave_up = 0

    # ------------------------------------------------------------------

    def _inner_api(self, node: NodeId) -> _ArqNodeApi:
        api = self._apis.get(node)
        if api is None:
            api = _ArqNodeApi(self, self.network, node)
            self._apis[node] = api
        return api

    def _send_frame(self, node: NodeId, to: NodeId, payload: Any) -> None:
        counter = self._next_id.get(node, 0)
        self._next_id[node] = counter + 1
        frame = ArqData(msg_id=(node, counter), payload=payload)
        self._outbox[frame.msg_id] = (to, frame, self.max_retries, self.base_timeout)
        self.network.transmit(node, to, frame)
        self.frames_sent += 1
        self.network.set_timer(node, self.base_timeout, (_ARQ_TAG, frame.msg_id))

    # ------------------------------------------------------------------

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        self.inner.on_start(node, self._inner_api(node))

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if isinstance(payload, ArqData):
            # ack every copy — the sender may be retrying a lost ack
            self.network.transmit(node, sender, ArqAck(msg_id=payload.msg_id))
            self.acks_sent += 1
            key = (node, payload.msg_id)
            if key in self._seen:
                self.duplicates_suppressed += 1
                return
            self._seen.add(key)
            self.inner.on_message(node, payload.payload, sender, self._inner_api(node))
        elif isinstance(payload, ArqAck):
            self._outbox.pop(payload.msg_id, None)
        else:
            raise ProtocolError(f"non-ARQ payload {payload!r} reached the ARQ layer")

    def on_timer(self, node: NodeId, tag: Any, api: NodeApi) -> None:
        if not (isinstance(tag, tuple) and len(tag) == 2 and tag[0] == _ARQ_TAG):
            self.inner.on_timer(node, tag, self._inner_api(node))
            return
        msg_id = tag[1]
        entry = self._outbox.get(msg_id)
        if entry is None:
            return  # ACKed in the meantime
        to, frame, retries_left, timeout = entry
        if retries_left <= 0:
            del self._outbox[msg_id]
            self.gave_up += 1
            return
        timeout = min(timeout * self.backoff, self.max_timeout)
        self._outbox[msg_id] = (to, frame, retries_left - 1, timeout)
        self.network.transmit(node, to, frame)
        self.retransmissions += 1
        self.network.set_timer(node, timeout, tag)

    # ------------------------------------------------------------------

    @property
    def frames_created(self) -> int:
        """Distinct frames the layer has originated (excluding retries)."""
        return sum(self._next_id.values())

    @property
    def pending_frames(self) -> int:
        """Frames still awaiting an ACK."""
        return len(self._outbox)

    @property
    def retry_budget(self) -> int:
        """Upper bound the retransmission invariant checks against."""
        return self.max_retries * self.frames_created
