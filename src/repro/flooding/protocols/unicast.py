"""Point-to-point routing protocols over an LHG.

Flooding reaches everyone; many systems also need *unicast* over the
same fault-tolerant topology.  Two protocols, both source-routed (the
path rides in the message header — no routing tables to repair after a
failure):

* :class:`SourceRoutedUnicast` — one path per message, computed by the
  certificate router (:func:`repro.core.routing.tree_route`).  Cheap
  (O(log n) messages), but a single crash on the chosen path kills the
  delivery.
* :class:`RedundantUnicast` — the message is launched along k
  internally node-disjoint paths (the construction's Menger witness)
  simultaneously.  Because no k−1 crashes can hit all k internally
  disjoint paths, delivery is **guaranteed** under at most k−1 failures
  (endpoints alive), at k× the message cost.

The contrast is experiment F7: single-path delivery decays with the
crash count while redundant delivery holds a hard 100% until f = k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable


@dataclass(frozen=True)
class RoutedMessage:
    """A source-routed payload: the remaining path rides in the header."""

    path: Tuple[NodeId, ...]
    hop_index: int
    payload: Any = "unicast"

    def next_hop(self) -> Optional[NodeId]:
        """The node this message should be forwarded to next."""
        if self.hop_index + 1 < len(self.path):
            return self.path[self.hop_index + 1]
        return None

    def advanced(self) -> "RoutedMessage":
        """The header after one forwarding step."""
        return RoutedMessage(
            path=self.path, hop_index=self.hop_index + 1, payload=self.payload
        )


class SourceRoutedUnicast(Protocol):
    """Deliver one message along one precomputed path.

    Attributes
    ----------
    delivered_at:
        Simulated delivery time, or ``None`` if the path was severed.
    hops_taken:
        Number of link traversals that actually happened.
    """

    def __init__(self, network: Network, path: Sequence[NodeId]) -> None:
        if len(path) < 1:
            raise ProtocolError("a route needs at least the source node")
        self.network = network
        self.path = tuple(path)
        self.delivered_at: Optional[float] = None
        self.hops_taken = 0

    @property
    def source(self) -> NodeId:
        """First node of the route."""
        return self.path[0]

    @property
    def target(self) -> NodeId:
        """Last node of the route."""
        return self.path[-1]

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node != self.source:
            return
        message = RoutedMessage(path=self.path, hop_index=0)
        if message.next_hop() is None:
            self.delivered_at = api.now  # self-delivery
            return
        api.send(message.next_hop(), message)

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if not isinstance(payload, RoutedMessage):
            raise ProtocolError(f"unexpected payload {payload!r}")
        self.hops_taken += 1
        message = payload.advanced()
        if message.path[message.hop_index] != node:
            raise ProtocolError("message arrived off its route")
        next_hop = message.next_hop()
        if next_hop is None:
            if self.delivered_at is None:
                self.delivered_at = api.now
            return
        api.send(next_hop, message)


class RedundantUnicast(Protocol):
    """Deliver one message along k disjoint paths simultaneously.

    The target records the first arrival; later copies are absorbed.
    With internally node-disjoint paths, any failure set of size ≤ k−1
    (excluding the endpoints) leaves at least one path intact, so the
    delivery guarantee is structural, not probabilistic.
    """

    def __init__(self, network: Network, paths: Sequence[Sequence[NodeId]]) -> None:
        if not paths:
            raise ProtocolError("need at least one path")
        heads = {tuple(p)[0] for p in paths}
        tails = {tuple(p)[-1] for p in paths}
        if len(heads) != 1 or len(tails) != 1:
            raise ProtocolError("all paths must share source and target")
        self.network = network
        self.paths = [tuple(p) for p in paths]
        self.delivered_at: Optional[float] = None
        self.copies_received = 0
        self.messages_sent = 0

    @property
    def source(self) -> NodeId:
        """Shared first node of all paths."""
        return self.paths[0][0]

    @property
    def target(self) -> NodeId:
        """Shared last node of all paths."""
        return self.paths[0][-1]

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node != self.source:
            return
        for path in self.paths:
            message = RoutedMessage(path=path, hop_index=0)
            next_hop = message.next_hop()
            if next_hop is None:
                self.delivered_at = api.now
            else:
                api.send(next_hop, message)
                self.messages_sent += 1

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if not isinstance(payload, RoutedMessage):
            raise ProtocolError(f"unexpected payload {payload!r}")
        message = payload.advanced()
        if message.path[message.hop_index] != node:
            raise ProtocolError("message arrived off its route")
        next_hop = message.next_hop()
        if next_hop is None:
            self.copies_received += 1
            if self.delivered_at is None:
                self.delivered_at = api.now
            return
        api.send(next_hop, message)
        self.messages_sent += 1
