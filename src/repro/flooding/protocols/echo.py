"""Propagation of Information with Feedback (PIF): flood + echo.

Flooding answers "tell everyone"; many systems also need the converse —
"tell everyone **and know when they all got it**", or aggregate a value
from every node (min/max/sum/count).  The classic solution is the
echo/PIF algorithm of Segall and Chang:

* the **wave** phase is plain flooding; each node adopts the first
  sender as its *parent*, implicitly building a spanning tree;
* the **echo** phase sends acknowledgements up the parent tree: a node
  echoes once all the neighbours it forwarded to have either echoed or
  declined (sent a NACK because they already had the message);
* the source's echo completion certifies *global delivery* and carries
  the aggregate folded over the whole membership.

On an LHG the wave inherits the O(log n) depth, so the full
wave + echo round trip costs ~2·eccentricity — the paper's latency
advantage squared over ring-like topologies for any "broadcast then
confirm" workload.

Termination under failures: a crashed node cannot echo, so the source
would wait forever — the protocol therefore exposes partial progress
(``echoes_pending``) and the failure experiments assert exactly which
subtrees are blocked; production deployments pair it with the heartbeat
detector (``repro.flooding.protocols.heartbeat``) to prune dead
branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Set

from repro.errors import ProtocolError
from repro.flooding.network import Network, NodeApi, Protocol

NodeId = Hashable


@dataclass(frozen=True)
class _Wave:
    """Wave-phase payload."""

    value_tag: str = "wave"


@dataclass(frozen=True)
class _Echo:
    """Echo-phase payload carrying the subtree aggregate."""

    aggregate: Any


@dataclass(frozen=True)
class _Decline:
    """NACK: receiver already belongs to another branch."""


class EchoProtocol(Protocol):
    """Flood-and-echo with aggregation.

    Parameters
    ----------
    network:
        The simulated network.
    source:
        Wave origin; learns completion and the global aggregate.
    value_of:
        Per-node contribution, e.g. ``lambda node: 1`` to count nodes.
    combine:
        Associative fold over contributions (default addition).

    Attributes
    ----------
    completed_at:
        Simulated time the source's echo completed (``None`` while
        pending — e.g. forever under an unrepaired crash).
    aggregate:
        The folded value at completion.
    parent:
        The implicit spanning tree (node → parent).
    """

    def __init__(
        self,
        network: Network,
        source: NodeId,
        value_of: Callable[[NodeId], Any] = lambda node: 1,
        combine: Callable[[Any, Any], Any] = lambda a, b: a + b,
    ) -> None:
        self.network = network
        self.source = source
        self.value_of = value_of
        self.combine = combine
        self.parent: Dict[NodeId, Optional[NodeId]] = {}
        self._pending: Dict[NodeId, Set[NodeId]] = {}
        self._partial: Dict[NodeId, Any] = {}
        self.completed_at: Optional[float] = None
        self.aggregate: Any = None

    # ------------------------------------------------------------------

    def _begin_wave(self, node: NodeId, api: NodeApi) -> None:
        self._partial[node] = self.value_of(node)
        targets = [
            neighbor
            for neighbor in api.neighbors()
            if neighbor != self.parent.get(node)
        ]
        self._pending[node] = set(targets)
        for neighbor in targets:
            api.send(neighbor, _Wave())
        if not targets:
            self._emit_echo(node, api)

    def _emit_echo(self, node: NodeId, api: NodeApi) -> None:
        parent = self.parent.get(node)
        if parent is None:
            self.completed_at = api.now
            self.aggregate = self._partial[node]
        else:
            api.send(parent, _Echo(aggregate=self._partial[node]))

    def _absorb(self, node: NodeId, child: NodeId, api: NodeApi) -> None:
        pending = self._pending.get(node)
        if pending is None or child not in pending:
            raise ProtocolError(
                f"{node!r} got an unexpected echo/decline from {child!r}"
            )
        pending.discard(child)
        if not pending:
            self._emit_echo(node, api)

    # ------------------------------------------------------------------

    def on_start(self, node: NodeId, api: NodeApi) -> None:
        if node != self.source:
            return
        self.parent[node] = None
        self.network.mark_delivered(node)
        self._begin_wave(node, api)

    def on_message(self, node: NodeId, payload: Any, sender: NodeId, api: NodeApi) -> None:
        if isinstance(payload, _Wave):
            if node in self.parent:
                api.send(sender, _Decline())
            else:
                self.parent[node] = sender
                self.network.mark_delivered(node)
                self._begin_wave(node, api)
        elif isinstance(payload, _Echo):
            self._partial[node] = self.combine(
                self._partial[node], payload.aggregate
            )
            self._absorb(node, sender, api)
        elif isinstance(payload, _Decline):
            self._absorb(node, sender, api)
        else:
            raise ProtocolError(f"unexpected payload {payload!r}")

    # ------------------------------------------------------------------

    @property
    def completed(self) -> bool:
        """Whether the source's echo has completed."""
        return self.completed_at is not None

    def echoes_pending(self) -> Dict[NodeId, Set[NodeId]]:
        """Per-node neighbours still owing an echo (diagnostics)."""
        return {
            node: set(waiting)
            for node, waiting in self._pending.items()
            if waiting
        }

    def covered(self) -> Set[NodeId]:
        """Nodes the wave reached."""
        return set(self.parent)
