#!/usr/bin/env python3
"""Capacity planning: from requirements to a validated deployment.

An operator workflow end to end:

1. requirements in, plan out — "250 services, survive 3 crashes,
   worst-case dissemination ≤ 12 hops";
2. build the planned topology and verify the paper's properties;
3. predict the broadcast bill and validate it against a simulated
   confirmed broadcast (flood + echo);
4. inspect the trade-offs: what would k = 2 or k = 6 have cost?

Run:  python examples/capacity_planning.py
"""

from repro.analysis.tables import render_table
from repro.core import build_lhg, check_lhg
from repro.core.planning import plan_topology
from repro.flooding import run_echo, run_flood

MEMBERS = 250
CRASHES_TO_SURVIVE = 3
LATENCY_BUDGET_HOPS = 20


def main() -> int:
    # 1. plan
    plan = plan_topology(
        MEMBERS, CRASHES_TO_SURVIVE, latency_budget_hops=LATENCY_BUDGET_HOPS
    )
    print("plan     :", plan.summary())

    # 2. build + verify
    graph, certificate = build_lhg(plan.n, plan.k)
    report = check_lhg(graph, plan.k)
    assert report.is_lhg
    print("verified :", report.summary())

    # 3. validate the predicted message bill against a simulation
    source = graph.nodes()[0]
    flood = run_flood(graph, source)
    assert flood.messages == plan.message_cost_per_broadcast
    echo = run_echo(graph, source)
    assert echo.completed and echo.aggregate == plan.n
    print(
        f"simulated: flood {flood.messages} msgs (predicted "
        f"{plan.message_cost_per_broadcast}), covered {flood.covered}/{plan.n} "
        f"at t={flood.completion_time}; confirmed broadcast round trip "
        f"t={echo.completed_at}"
    )

    # 4. the k trade-off table
    rows = []
    for failures in (1, 2, 3, 5):
        alternative = plan_topology(MEMBERS, failures)
        rows.append(
            (
                failures,
                alternative.k,
                alternative.edges,
                alternative.expected_diameter,
                alternative.message_cost_per_broadcast,
                alternative.k_regular,
            )
        )
    print()
    print(
        render_table(
            [
                "crashes survived",
                "k",
                "links",
                "diameter",
                "msgs/broadcast",
                "k-regular",
            ],
            rows,
            title=f"Fault-tolerance trade-offs at n={MEMBERS}",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
