#!/usr/bin/env python3
"""End-to-end autonomic loop: detect crashes, repair the overlay, go on.

This demo chains every layer of the library into the full life of a
robust dissemination system:

1. **Operate** — peers flood updates over an LHG topology.
2. **Fail** — a burst of up to k-1 peers crashes mid-operation.
3. **Detect** — surviving neighbours notice via heartbeats (no oracle).
4. **Repair** — the controller removes exactly the *suspected* peers
   and restores a full-strength LHG among the survivors.
5. **Operate again** — flooding is back to guaranteed full coverage.

Run:  python examples/autonomic_system.py
"""

import random

from repro.flooding import run_failure_detection, run_flood
from repro.flooding.failures import crash_before_start
from repro.graphs.connectivity import node_connectivity
from repro.overlay import LHGOverlay, execute_repair

K = 3
MEMBERS = 24
ROUNDS = 4
CRASH_TIME = 10.0


def main() -> int:
    overlay = LHGOverlay(k=K)
    for i in range(MEMBERS):
        overlay.join(f"peer-{i}")
    rng = random.Random(23)

    for round_number in range(1, ROUNDS + 1):
        print(f"— round {round_number}: {overlay.size} peers —")
        topology = overlay.topology()

        # 1. normal operation
        source = overlay.members[0]
        healthy = run_flood(topology, source)
        assert healthy.fully_covered
        print(
            f"  operate: flood covered {healthy.covered}/{healthy.n} "
            f"in t={healthy.completion_time}"
        )

        # 2. a burst of k-1 crashes
        victims = rng.sample(
            [m for m in overlay.members if m != source], K - 1
        )
        print(f"  fail   : {', '.join(map(str, victims))} crash at t={CRASH_TIME}")

        # 3. detection via heartbeats over the damaged topology
        detection = run_failure_detection(
            topology, victims, CRASH_TIME, period=1.0, timeout=3.5
        )
        assert detection.complete and detection.accurate
        print(
            f"  detect : all neighbours suspected the crashed peers within "
            f"{detection.worst_detection_delay} time units, 0 false alarms"
        )

        # flooding still works while damaged (the k-1 guarantee)
        degraded = run_flood(
            topology, source, failures=crash_before_start(victims)
        )
        assert degraded.fully_covered
        print(
            f"  bridge : flood during damage still covered "
            f"{degraded.covered}/{degraded.alive} survivors"
        )

        # 4. repair exactly the suspected set
        report = execute_repair(overlay, victims)
        print(
            f"  repair : kappa {report.connectivity_before} -> "
            f"{report.connectivity_after} touching "
            f"{report.plan.total_edge_work} links"
        )
        assert report.connectivity_after == K

    final = node_connectivity(overlay.topology())
    print(
        f"\nAfter {ROUNDS * (K - 1)} total crashes the system is still a "
        f"{final}-connected LHG with {overlay.size} peers."
    )
    assert final == K
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
