#!/usr/bin/env python3
"""Self-healing overlay: survive far more than k-1 total failures.

k-connectivity tolerates k-1 *simultaneous* crashes.  The operational
trick is to treat that as a per-burst budget: after each burst, the
overlay controller repairs the topology back to a full-strength LHG
among the survivors.  This demo runs a crash campaign worth several
times the one-shot budget and shows

* the damaged topology never partitions (each burst is <= k-1),
* a flood launched *between* burst and repair still reaches everyone,
* each repair restores kappa = k at a modest edge cost.

Run:  python examples/self_healing_overlay.py
"""

import random

from repro.analysis.tables import render_table
from repro.flooding import run_flood
from repro.flooding.failures import crash_before_start
from repro.graphs.connectivity import node_connectivity
from repro.overlay import LHGOverlay, execute_repair

K = 3
START_MEMBERS = 30
BURSTS = 6


def main() -> int:
    overlay = LHGOverlay(k=K)
    for i in range(START_MEMBERS):
        overlay.join(f"peer-{i}")
    rng = random.Random(17)

    rows = []
    total = 0
    for burst in range(1, BURSTS + 1):
        victims = rng.sample(overlay.members, K - 1)
        total += len(victims)

        # 1. The failures strike: flood through the *damaged* topology.
        damaged = overlay.topology()
        source = next(m for m in overlay.members if m not in victims)
        result = run_flood(
            damaged, source, failures=crash_before_start(victims)
        )
        assert result.fully_covered, "k-1 crashes can never break flooding"

        # 2. The controller repairs.
        report = execute_repair(overlay, victims)
        rows.append(
            (
                burst,
                total,
                overlay.size,
                f"{result.covered}/{result.alive}",
                report.connectivity_before,
                report.connectivity_after,
                report.plan.total_edge_work,
            )
        )

    print(
        render_table(
            [
                "burst",
                "crashed so far",
                "members",
                "flood during damage",
                "kappa damaged",
                "kappa repaired",
                "repair edges",
            ],
            rows,
            title=f"Self-healing campaign: k={K}, bursts of {K - 1}",
        )
    )
    final_kappa = node_connectivity(overlay.topology())
    print(
        f"\nSurvived {total} total crashes (one-shot budget: {K - 1}) — "
        f"final topology is {final_kappa}-connected with "
        f"{overlay.size} members."
    )
    assert final_kappa == K
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
