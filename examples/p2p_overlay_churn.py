#!/usr/bin/env python3
"""Peer-to-peer overlay under churn: the paper's "arbitrary n" motivation.

Peers join and leave continuously; the overlay controller keeps the
topology an LHG for the current (n, k) at every instant.  We replay a
seeded churn trace and report

* the per-event edge churn (maintenance cost),
* periodic verification that the live topology is still k-connected,
* a flood through the post-churn topology.

Run:  python examples/p2p_overlay_churn.py
"""

from repro.analysis.tables import render_table
from repro.flooding import run_flood
from repro.graphs.connectivity import node_connectivity
from repro.overlay import LHGOverlay, churn_summary, generate_trace

K = 3
TARGET_POPULATION = 24
CHURN_EVENTS = 60
VERIFY_EVERY = 15


def main() -> int:
    trace = generate_trace(
        CHURN_EVENTS, TARGET_POPULATION, K, seed=7, join_bias=0.5
    )
    overlay = LHGOverlay(k=K)

    checkpoints = []
    for index, event in enumerate(trace):
        if event.kind == "join":
            overlay.join(event.member)
        else:
            overlay.leave(event.member)
        if (index + 1) % VERIFY_EVERY == 0 and overlay.in_lhg_regime():
            topology = overlay.topology()
            checkpoints.append(
                (
                    index + 1,
                    overlay.size,
                    topology.number_of_edges(),
                    node_connectivity(topology),
                )
            )

    print(
        render_table(
            ["event #", "peers", "edges", "kappa"],
            checkpoints,
            title=f"Overlay checkpoints (k={K}) — connectivity never drops below k",
        )
    )
    for _, _, _, kappa in checkpoints:
        assert kappa >= K, "the overlay invariant was violated"

    mean, p95, worst = churn_summary(overlay.history)
    print(
        f"\nMaintenance cost over {len(overlay.history)} events: "
        f"mean {mean:.1f} edge changes/event, p95 {p95:.0f}, worst {worst}"
    )

    topology = overlay.topology()
    source = overlay.members[0]
    result = run_flood(topology, source)
    print(
        f"Flood through the final overlay ({overlay.size} peers): "
        f"covered {result.covered}/{result.n} at t={result.completion_time} "
        f"with {result.messages} messages"
    )
    assert result.fully_covered
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
