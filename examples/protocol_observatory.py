#!/usr/bin/env python3
"""Protocol observatory: watch a flood happen, event by event.

Attaches a passive trace collector to a simulated flood and renders

* the first events of the message timeline,
* the per-round traffic profile (sends per time unit),
* the coverage S-curve,

then repeats the run with two crashed nodes to show the drops and the
re-routing in the trace.  Tracing never perturbs the run — the traced
execution is bit-identical to the untraced one.

Run:  python examples/protocol_observatory.py
"""

from repro.analysis.curves import ascii_curve, coverage_curve
from repro.core import build_lhg
from repro.flooding import TraceCollector, crash_before_start
from repro.flooding.failures import apply_schedule
from repro.flooding.network import Network
from repro.flooding.protocols.flood import FloodProtocol
from repro.flooding.simulator import Simulator

N, K = 30, 3


def traced_flood(graph, source, schedule=None):
    simulator = Simulator()
    network = Network(graph, simulator)
    trace = TraceCollector()
    network.add_observer(trace)
    if schedule is not None:
        apply_schedule(schedule, network, simulator)
    protocol = FloodProtocol(network, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run()
    return network, trace


def main() -> int:
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    network, trace = traced_flood(graph, source)
    print(f"=== failure-free flood over {graph.name} ===")
    print(trace.render_timeline(limit=12))
    print("\ntraffic profile (sends per time unit):")
    for slot, count in trace.activity_histogram(bucket=1.0).items():
        print(f"  t in [{slot:g}, {slot + 1:g}): {'#' * count} {count}")

    from repro.flooding.metrics import FloodResult

    result = FloodResult(
        protocol="flood",
        n=N,
        alive=N,
        reachable=N,
        covered=len(network.delivery_times),
        messages=network.stats.messages_sent,
        completion_time=max(network.delivery_times.values()),
        delivery_times=dict(network.delivery_times),
    )
    print("\ncoverage over time:")
    print(ascii_curve(coverage_curve(result, buckets=24), width=48, height=10))

    victims = [graph.nodes()[4], graph.nodes()[9]]
    network, trace = traced_flood(
        graph, source, schedule=crash_before_start(victims)
    )
    drops = trace.of_kind("drop")
    print(f"\n=== same flood with {len(victims)} nodes crashed ===")
    print(
        f"covered {len(network.delivery_times)}/{N - len(victims)} survivors; "
        f"{len(drops)} messages hit dead endpoints:"
    )
    for event in drops[:5]:
        print(f"  t={event.time:g}  {event.sender!r} x> {event.receiver!r}")
    assert len(network.delivery_times) == N - len(victims)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
