#!/usr/bin/env python3
"""Resilient broadcast: flooding on an LHG vs tree-cast and gossip.

The scenario from the paper's introduction: disseminate a message to a
crash-prone group.  We inject f random crashes (f = 0 … k+1) and compare

* deterministic flooding on a k-connected LHG (this paper),
* broadcast over a precomputed spanning tree (cheap, fragile),
* push gossip (probabilistic, message-hungry).

Flooding holds 100% coverage for every f ≤ k−1 — guaranteed by
k-connectivity — while tree-cast degrades at the very first crash and
gossip pays multiples of the message bill for probabilistic coverage.

Run:  python examples/resilient_broadcast.py
"""

from repro import build_lhg
from repro.analysis.tables import render_table
from repro.flooding import (
    random_crashes,
    repeat_runs,
    run_flood,
    run_gossip,
    run_treecast,
)

N, K, SEEDS = 60, 4, 25


def main() -> int:
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    rows = []
    for crashes in range(0, K + 2):
        def schedule(seed: int, f: int = crashes):
            if f == 0:
                return None
            return random_crashes(graph, f, seed=seed, protect={source})

        flood = repeat_runs(run_flood, graph, source, schedule, SEEDS)
        tree = repeat_runs(run_treecast, graph, source, schedule, SEEDS)
        gossip = repeat_runs(
            run_gossip, graph, source, schedule, SEEDS, fanout=2, rounds=14
        )
        rows.append(
            (
                crashes,
                f"{flood.mean_delivery_ratio():.3f}",
                f"{tree.mean_delivery_ratio():.3f}",
                f"{gossip.mean_delivery_ratio():.3f}",
                round(flood.mean_messages()),
                round(gossip.mean_messages()),
            )
        )

    print(
        render_table(
            [
                "crashes",
                "flood coverage",
                "treecast coverage",
                "gossip coverage",
                "flood msgs",
                "gossip msgs",
            ],
            rows,
            title=f"Broadcast under failures — LHG(n={N}, k={K}), {SEEDS} seeds",
        )
    )
    print(
        f"\nGuarantee: with at most k-1 = {K - 1} crashes the LHG stays "
        f"connected, so flooding coverage is exactly 1.0 — not a statistic."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
