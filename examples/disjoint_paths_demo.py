#!/usr/bin/env python3
"""Menger witnesses and structural routing on an LHG.

The paper's connectivity proof is constructive: between any two nodes of
a k-connected LHG there are k internally node-disjoint paths.  This demo

* extracts such a witness family with the exact max-flow machinery,
* routes the same pair structurally through the construction
  certificate in O(log n) time, and
* shows that killing any k−1 of the witness paths' interior nodes still
  leaves a route.

Run:  python examples/disjoint_paths_demo.py
"""

import random

from repro import build_lhg
from repro.core.routing import menger_witness, tree_route
from repro.graphs.traversal import (
    is_simple_path,
    paths_internally_disjoint,
    shortest_path,
)

N, K = 40, 4


def main() -> int:
    graph, certificate = build_lhg(N, K)
    rng = random.Random(11)
    source, target = rng.sample(graph.nodes(), 2)
    print(f"Topology {graph.name}; routing {source!r} -> {target!r}\n")

    paths = menger_witness(graph, certificate, source, target)
    assert paths_internally_disjoint(paths)
    print(f"{len(paths)} internally node-disjoint paths (Menger witness):")
    for path in paths:
        print("  " + " -> ".join(repr(p) for p in path))

    structural = tree_route(certificate, source, target)
    bfs = shortest_path(graph, source, target)
    assert is_simple_path(graph, structural)
    print(
        f"\nStructural route ({len(structural) - 1} hops, certificate-only) "
        f"vs BFS shortest path ({len(bfs) - 1} hops):"
    )
    print("  " + " -> ".join(repr(p) for p in structural))

    # Adversarial check: remove all interior nodes of any K-1 witness
    # paths; the survivors stay connected through the remaining path.
    for drop in range(K):
        keep = paths[drop]
        victims = {
            node
            for i, path in enumerate(paths)
            if i != drop
            for node in path[1:-1]
        }
        damaged = graph.without_nodes(victims)
        route = shortest_path(damaged, source, target)
        assert route is not None, "k-connectivity violated!"
        print(
            f"  killing paths {{0..{K - 1}}} - {{{drop}}} "
            f"({len(victims)} nodes) still leaves a {len(route) - 1}-hop route"
        )
    print("\nAny k-1 = %d node failures leave the pair connected. QED (empirically)." % (K - 1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
