#!/usr/bin/env python3
"""Topology atlas: LHGs against the special families of the related work.

Hypercubes, de Bruijn graphs and butterflies all have logarithmic
diameter — but they exist only at special sizes (2^d, 2^d, d·2^d), while
the LHG constructions cover **every** n ≥ 2k.  This example prints, for
each family, the sizes available up to a cap, and compares diameter,
degree and edge count at the nearest common sizes.

Run:  python examples/topology_atlas.py
"""

from repro import build_lhg, harary_graph
from repro.analysis.tables import render_table
from repro.graphs.generators import (
    butterfly_graph,
    debruijn_graph,
    hypercube_graph,
    valid_butterfly_sizes,
    valid_debruijn_sizes,
    valid_hypercube_sizes,
)
from repro.graphs.properties import degree_stats
from repro.graphs.traversal import diameter

MAX_N = 300


def describe(name, graph):
    stats = degree_stats(graph)
    return (
        name,
        graph.number_of_nodes(),
        graph.number_of_edges(),
        f"{stats.minimum}..{stats.maximum}",
        diameter(graph),
    )


def main() -> int:
    print("Sizes each family can realise up to n =", MAX_N)
    print("  hypercube :", valid_hypercube_sizes(MAX_N))
    print("  de Bruijn :", valid_debruijn_sizes(2, MAX_N))
    print("  butterfly :", valid_butterfly_sizes(MAX_N))
    print("  LHG       : every n >= 2k  (e.g. all of 8..%d for k=4)" % MAX_N)
    print()

    rows = [
        describe("hypercube(5)", hypercube_graph(5)),
        describe("debruijn(2,5)", debruijn_graph(2, 5)),
        describe("butterfly(4)", butterfly_graph(4)),
        describe("harary(4,64)", harary_graph(4, 64)),
        describe("lhg(64,4)", build_lhg(64, 4)[0]),
        describe("harary(4,65)", harary_graph(4, 65)),
        describe("lhg(65,4)", build_lhg(65, 4)[0]),
    ]
    print(
        render_table(
            ["topology", "n", "edges", "degree", "diameter"],
            rows,
            title="Degree/diameter atlas around n = 64",
        )
    )
    print(
        "\nNote how the special families stop existing at n = 65 while the "
        "LHG construction continues with the same guarantees."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
