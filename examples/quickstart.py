#!/usr/bin/env python3
"""Quickstart: build an LHG, verify the paper's properties, flood it.

Run:  python examples/quickstart.py [n] [k]
"""

import sys

from repro import build_lhg, check_lhg, harary_graph, run_flood
from repro.graphs.traversal import diameter


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    # 1. Build: pick the best construction rule for the pair automatically.
    graph, certificate = build_lhg(n, k)
    print(f"Built {graph.name} using the {certificate.rule!r} rule")
    print(f"  nodes      : {graph.number_of_nodes()}")
    print(f"  edges      : {graph.number_of_edges()}")
    print(f"  tree height: {certificate.height()}")

    # 2. Verify Properties 1-5 of the LHG definition.
    report = check_lhg(graph, k)
    print(f"  verified   : {report.summary()}")
    assert report.is_lhg, "the construction must satisfy Properties 1-4"

    # 3. Compare against the classic Harary graph H(k, n): same fault
    #    tolerance and edge count, linear instead of logarithmic diameter.
    harary = harary_graph(k, n)
    print(
        f"  diameter   : LHG={report.diameter} vs Harary={diameter(harary)} "
        f"(both have ~{harary.number_of_edges()} edges)"
    )

    # 4. Flood it: every node is covered in diameter-many unit-latency hops.
    source = graph.nodes()[0]
    result = run_flood(graph, source)
    print(
        f"  flooding   : covered {result.covered}/{result.n} nodes in "
        f"t={result.completion_time} using {result.messages} messages"
    )
    assert result.fully_covered
    return 0


if __name__ == "__main__":
    sys.exit(main())
