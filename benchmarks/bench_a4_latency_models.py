"""Experiment A4 — latency-model sensitivity of the flooding advantage.

The hop-count results (F1/F2) use unit latencies.  Real links are
heterogeneous, so this experiment re-runs the Harary-vs-LHG flooding
comparison under uniform [0.5, 1.5] and exponential (base 0.1, mean 1)
per-message latencies.  Shape assertion: the LHG's advantage (completion
time ratio) survives every latency model — randomising link delays does
not rescue a linear-diameter topology.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood
from repro.flooding.network import (
    ConstantLatency,
    ExponentialLatency,
    UniformLatency,
)
from repro.graphs.generators.harary import harary_graph

K = 4
SIZES = (64, 256, 512)
SEEDS = 5


def _mean_completion(graph, model_factory) -> float:
    source = graph.nodes()[0]
    total = 0.0
    for seed in range(SEEDS):
        result = run_flood(graph, source, latency=model_factory(seed))
        assert result.fully_covered
        total += result.completion_time
    return total / SEEDS


def test_a4_latency_models(benchmark, report):
    models = {
        "unit": lambda seed: ConstantLatency(1.0),
        "uniform": lambda seed: UniformLatency(0.5, 1.5, seed=seed),
        "exponential": lambda seed: ExponentialLatency(0.1, 1.0, seed=seed),
    }
    rows = []
    for n in SIZES:
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        for name, factory in models.items():
            lhg_time = _mean_completion(lhg, factory)
            harary_time = _mean_completion(harary, factory)
            ratio = harary_time / lhg_time
            rows.append(
                (n, name, round(harary_time, 2), round(lhg_time, 2), round(ratio, 2))
            )
            if n >= 256:
                # the advantage survives every latency model
                assert ratio > 4, (n, name)

    lhg, _ = build_lhg(SIZES[0], K)
    source = lhg.nodes()[0]
    benchmark(
        lambda: run_flood(lhg, source, latency=ExponentialLatency(0.1, 1.0, seed=0))
    )

    report(
        "a4_latency_models",
        render_table(
            ["n", "latency model", "harary time", "lhg time", "ratio"],
            rows,
            title=f"A4: flooding completion time per latency model (k={K}, {SEEDS} seeds)",
        ),
    )
