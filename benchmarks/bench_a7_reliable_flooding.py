"""Experiment A7 — buying back determinism on lossy links.

Plain flooding's delivery degrades once per-message loss exceeds what
the k-fold path redundancy absorbs (A5).  Per-link ACK/retransmission
restores guaranteed delivery at a quantified overhead: with loss p and
r retries a link fails with probability p^(r+1), so a constant retry
budget holds 100% coverage deep into loss regimes that break plain
flooding — at a message bill that grows like 2/(1−p) per link (data
copies plus ACKs, both lossy).
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import repeat_runs, run_flood, run_reliable_flood

N, K, SEEDS = 40, 4, 15
LOSS_RATES = (0.0, 0.2, 0.4, 0.6)


def test_a7_reliable_flooding(benchmark, report):
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    rows = []
    for loss in LOSS_RATES:
        plain = repeat_runs(run_flood, graph, source, None, SEEDS, loss_rate=loss)
        reliable = repeat_runs(
            run_reliable_flood, graph, source, None, SEEDS, loss_rate=loss
        )
        rows.append(
            (
                loss,
                round(plain.mean_delivery_ratio(), 3),
                round(reliable.mean_delivery_ratio(), 3),
                round(plain.mean_messages()),
                round(reliable.mean_messages()),
            )
        )
        # the guarantee reliable flooding buys back
        assert reliable.mean_delivery_ratio() == 1.0, loss

    plain_series = [r[1] for r in rows]
    overhead = [r[4] / max(r[3], 1) for r in rows]
    # plain flooding eventually degrades; the overhead ratio grows with p
    assert plain_series[-1] < 0.9
    assert overhead[-1] > overhead[0]

    benchmark(
        lambda: run_reliable_flood(graph, source, loss_rate=0.4, loss_seed=1)
    )

    report(
        "a7_reliable_flooding",
        render_table(
            [
                "loss rate",
                "plain delivery",
                "reliable delivery",
                "plain msgs",
                "reliable msgs",
            ],
            rows,
            title=(
                f"A7: plain vs ACK/retransmit flooding — LHG(n={N}, k={K}), "
                f"{SEEDS} seeds"
            ),
        ),
    )
