"""Experiment A2 — routing ablation: certificate routing vs global search.

The construction certificate routes in O(log n) using zero global state.
This experiment quantifies what that costs (path stretch vs BFS-optimal)
and what it saves (time vs BFS and vs the max-flow Menger witness).
"""

from __future__ import annotations

import random
import time

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.core.routing import menger_witness, tree_route
from repro.graphs.traversal import shortest_path_length

PAIRS = [(46, 3), (178, 3), (104, 4), (386, 4)]
SAMPLES = 60


def _measure(n, k):
    graph, cert = build_lhg(n, k)
    rng = random.Random(n)
    nodes = graph.nodes()
    stretches = []
    tree_time = 0.0
    bfs_time = 0.0
    for _ in range(SAMPLES):
        s, t = rng.sample(nodes, 2)
        start = time.perf_counter()
        structural = tree_route(cert, s, t)
        tree_time += time.perf_counter() - start
        start = time.perf_counter()
        optimal = shortest_path_length(graph, s, t)
        bfs_time += time.perf_counter() - start
        stretches.append((len(structural) - 1) / optimal)
    mean_stretch = sum(stretches) / len(stretches)
    return graph, cert, mean_stretch, max(stretches), tree_time, bfs_time


def test_a2_routing(benchmark, report):
    rows = []
    for n, k in PAIRS:
        graph, cert, mean_stretch, worst_stretch, tree_time, bfs_time = _measure(n, k)
        rows.append(
            (
                n,
                k,
                round(mean_stretch, 2),
                round(worst_stretch, 2),
                round(tree_time / SAMPLES * 1e6, 1),
                round(bfs_time / SAMPLES * 1e6, 1),
            )
        )
        # bounded stretch: structural routes stay within 4x optimal
        assert worst_stretch <= 4.0, (n, k)

    # Menger witness correctness at the largest pair (cost dominated by
    # max-flow; the certificate validates the family size).
    graph, cert = build_lhg(*PAIRS[-1])
    nodes = graph.nodes()
    paths = menger_witness(graph, cert, nodes[0], nodes[-1])
    assert len(paths) == PAIRS[-1][1]

    mid_graph, mid_cert = build_lhg(178, 3)
    mid_nodes = mid_graph.nodes()
    benchmark(lambda: tree_route(mid_cert, mid_nodes[0], mid_nodes[-1]))

    report(
        "a2_routing",
        render_table(
            ["n", "k", "mean stretch", "worst stretch",
             "tree-route us", "bfs us"],
            rows,
            title="A2: certificate routing vs BFS",
        ),
    )
