"""Experiment A6 — failure detection: completing the self-healing loop.

The repair experiments (F8) assume crashes are known; this one measures
the heartbeat detector that discovers them over the LHG's own links:

* detection latency as a function of the suspicion timeout,
* the accuracy/completeness trade-off: a tight timeout under heavy-tail
  latency produces false suspicions, a generous one stays clean,
* robustness of detection to heartbeat loss (each crashed node has ≥ k
  independent observers).
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_failure_detection
from repro.flooding.network import ExponentialLatency

N, K = 30, 3
CRASH_TIME = 10.0
TIMEOUTS = (1.5, 2.5, 3.5, 6.0)


def test_a6_failure_detection(benchmark, report):
    graph, _ = build_lhg(N, K)
    victim = graph.nodes()[4]

    rows = []
    for timeout in TIMEOUTS:
        clean = run_failure_detection(
            graph, [victim], CRASH_TIME, period=1.0, timeout=timeout
        )
        noisy = run_failure_detection(
            graph,
            [victim],
            CRASH_TIME,
            period=1.0,
            timeout=timeout,
            latency=ExponentialLatency(0.1, 1.2, seed=3),
            horizon=40.0,
        )
        lossy = run_failure_detection(
            graph, [victim], CRASH_TIME, period=1.0, timeout=timeout,
            loss_rate=0.15,
        )
        rows.append(
            (
                timeout,
                clean.worst_detection_delay,
                clean.complete,
                noisy.false_suspicions,
                lossy.complete and lossy.accurate,
            )
        )
        # detection is always complete under constant latency
        assert clean.complete and clean.accurate
        # detection latency tracks the timeout
        assert timeout - 1.5 <= clean.worst_detection_delay <= timeout + 3.0

    # accuracy trade-off: the tightest timeout false-suspects under the
    # heavy-tail latency, the loosest does not
    assert rows[0][3] > 0
    assert rows[-1][3] == 0
    # 15% heartbeat loss is harmless once the timeout covers ~3 periods
    assert rows[-1][4]

    benchmark(
        lambda: run_failure_detection(
            graph, [victim], CRASH_TIME, period=1.0, timeout=3.5, horizon=20.0
        )
    )

    report(
        "a6_failure_detection",
        render_table(
            [
                "timeout",
                "worst detection delay",
                "complete (clean)",
                "false suspicions (heavy tail)",
                "ok under 15% loss",
            ],
            rows,
            title=f"A6: heartbeat detector quality — LHG(n={N}, k={K}), period 1.0",
        ),
    )
