"""Experiment F15 — telemetry overhead: observability that costs nothing.

Runs the full chaos-campaign grid on LHG(n=64, k=4) three ways and
measures what the ``repro.obs`` layer costs:

* **Off** (no collector installed): the span/metric call sites reduce
  to a single ``is None`` check — the inert path is micro-benchmarked
  directly (ns per ``span()`` call).
* **On** (collector installed): every campaign/cell/build/run span,
  network counter and metrics snapshot is recorded in memory.
* **Passivity**: the traced matrix must be *byte-identical* to the
  plain one — telemetry may observe the science but never touch it.
  Asserted unconditionally.

The measured on-vs-off wall-time ratio is written to
``results/BENCH_telemetry.json`` (target: <3% overhead; the hard
assert is a loud 10% regression tripwire so hardware noise cannot
flake the harness while a real regression still fails it).
"""

from __future__ import annotations

import os
import pathlib
import time

from repro import obs
from repro.exec import GRAPH_CACHE, TopologySpec
from repro.perf import emit_bench
from repro.robustness import ChaosCampaign

N, K = 64, 4
SEEDS = (0,)
REPEATS = 5  # per arm, interleaved plain/traced to cancel clock drift
TARGET_OVERHEAD = 0.03  # the design budget (DESIGN.md §10)
TRIPWIRE_OVERHEAD = 0.10  # the asserted regression bound

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _campaign() -> ChaosCampaign:
    spec = TopologySpec(N, K)
    return ChaosCampaign([(spec.label, spec)], seeds=SEEDS)


def _inert_span_nanos(calls: int = 200_000) -> float:
    """Nanoseconds per ``obs.span()`` call with no collector installed."""
    assert obs.active() is None
    start = time.perf_counter()
    for _ in range(calls):
        with obs.span("probe"):
            pass
    return (time.perf_counter() - start) / calls * 1e9


def test_f15_telemetry_overhead(benchmark, report):
    GRAPH_CACHE.clear()
    obs.uninstall()

    # warm the graph cache so both arms time the simulation, not the build
    baseline = _campaign().run()
    assert baseline.all_green, baseline.violations
    rendered = baseline.render()
    cells = len(baseline.cells)

    # interleave the two arms: alternating runs see the same thermal /
    # frequency envelope, so min-of-arm compares like with like
    plain_walls, traced_walls = [], []
    events, snapshot = [], {}
    for _ in range(REPEATS):
        campaign = _campaign()
        assert campaign.run().render() == rendered
        plain_walls.append(campaign.last_report.wall_seconds)

        collector = obs.install()
        campaign = _campaign()
        matrix = campaign.run()
        obs.uninstall()
        # passivity: telemetry never changes the science
        assert matrix.render() == rendered
        traced_walls.append(campaign.last_report.wall_seconds)
        events = collector.events
        snapshot = collector.metrics.snapshot()

    assert obs.validate_events(events) == []
    spans = list(obs.iter_spans(events))
    opened = {e["name"] for e in events if e["kind"] == "span-open"}
    assert {"campaign", "graph-build", "cell", "protocol-run"} <= opened
    assert snapshot["counters"]["net.send"] > 0

    # min-of-repeats: immune to one-off scheduler hiccups on shared CI
    overhead = min(traced_walls) / min(plain_walls) - 1.0
    assert overhead < TRIPWIRE_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} blew the regression tripwire"
    )

    inert_nanos = _inert_span_nanos()

    payload = {
        "topology": {"n": N, "k": K},
        "grid": {"seeds": len(SEEDS), "cells": cells},
        "cpu_count": os.cpu_count(),
        "repeats": REPEATS,
        "target_overhead_fraction": TARGET_OVERHEAD,
        "within_target": overhead < TARGET_OVERHEAD,
        "inert_span_nanos": round(inert_nanos, 1),
        "events_recorded": len(events),
        "spans_recorded": len(spans),
        "net_send_counted": snapshot["counters"]["net.send"],
        "byte_identical": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_telemetry.json",
        "f15_telemetry",
        {
            "plain_wall_seconds": plain_walls,
            "traced_wall_seconds": traced_walls,
            "overhead_fraction": [overhead],
        },
        payload=payload,
        units={"overhead_fraction": "fraction"},
    )

    report(
        "f15_telemetry",
        "\n".join(
            [
                f"F15: telemetry overhead — LHG(n={N}, k={K}), {cells} cells,"
                f" {len(events)} events / {len(spans)} spans recorded",
                f"  plain:  {min(plain_walls):.3f}s   traced: "
                f"{min(traced_walls):.3f}s   overhead {overhead:+.2%} "
                f"(target <{TARGET_OVERHEAD:.0%})",
                f"  inert span() call: {inert_nanos:.0f} ns "
                f"(no collector installed)",
                "  traced matrix byte-identical to plain: True",
            ]
        ),
    )

    # time one traced serial grid pass as the benchmark sample
    def traced_run():
        obs.install()
        try:
            return _campaign().run()
        finally:
            obs.uninstall()

    benchmark(traced_run)
