"""Experiment T3 — message overhead: flooding vs gossip vs tree-cast.

Flooding on a link-minimal graph sends exactly 2m − (n − 1) messages
(every covered non-source node forwards on deg−1 links, the source on
deg links).  On a k-regular LHG that is ≈ kn.  Gossip needs a multiple
of that for probabilistic coverage; tree-cast sends the bare minimum
n − 1 but is fragile (see F3).  The table fixes the triangle.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood, run_gossip, run_treecast

SIZES = (20, 40, 80, 160)
K = 4
GOSSIP_FANOUT, GOSSIP_ROUNDS = 2, 14


def test_t3_message_overhead(benchmark, report):
    rows = []
    for n in SIZES:
        graph, _ = build_lhg(n, K)
        source = graph.nodes()[0]
        m = graph.number_of_edges()
        flood = run_flood(graph, source)
        gossip = run_gossip(
            graph, source, fanout=GOSSIP_FANOUT, rounds=GOSSIP_ROUNDS, seed=1
        )
        tree = run_treecast(graph, source)
        rows.append(
            (
                n,
                m,
                flood.messages,
                2 * m - (n - 1),
                gossip.messages,
                round(gossip.delivery_ratio, 3),
                tree.messages,
            )
        )
        # exact closed form for deterministic flooding
        assert flood.messages == 2 * m - (n - 1)
        assert tree.messages == n - 1
        assert gossip.messages > 2 * flood.messages

    graph, _ = build_lhg(SIZES[-1], K)
    source = graph.nodes()[0]
    benchmark(
        lambda: run_gossip(
            graph, source, fanout=GOSSIP_FANOUT, rounds=GOSSIP_ROUNDS, seed=1
        )
    )

    report(
        "t3_messages",
        render_table(
            [
                "n",
                "edges",
                "flood msgs",
                "2m-(n-1)",
                "gossip msgs",
                "gossip coverage",
                "treecast msgs",
            ],
            rows,
            title=f"T3: message cost per full broadcast (k={K})",
        ),
    )
