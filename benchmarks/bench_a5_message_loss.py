"""Experiment A5 — message loss: path redundancy absorbs lossy links.

Crash-stop failures are not the only hazard; real links drop messages.
Flooding on a k-connected graph is naturally loss-tolerant — each node
would receive the payload on up to k independent links — while the
spanning-tree baseline has exactly one delivery attempt per node.  The
table sweeps the per-message loss probability and reports mean delivery
for flooding on the LHG vs tree-cast, plus gossip for reference.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import repeat_runs, run_flood, run_gossip, run_treecast

N, K, SEEDS = 62, 4, 20
LOSS_RATES = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)


def test_a5_message_loss(benchmark, report):
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    rows = []
    for loss in LOSS_RATES:
        flood = repeat_runs(run_flood, graph, source, None, SEEDS, loss_rate=loss)
        tree = repeat_runs(run_treecast, graph, source, None, SEEDS, loss_rate=loss)
        gossip = repeat_runs(
            run_gossip, graph, source, None, SEEDS, fanout=2, rounds=14,
            loss_rate=loss,
        )
        rows.append(
            (
                loss,
                round(flood.mean_delivery_ratio(), 3),
                round(tree.mean_delivery_ratio(), 3),
                round(gossip.mean_delivery_ratio(), 3),
            )
        )

    flood_series = [r[1] for r in rows]
    tree_series = [r[2] for r in rows]
    # flooding absorbs moderate loss almost completely...
    assert flood_series[2] > 0.97  # 10% loss
    # ...while the single-attempt tree decays roughly like (1-p)^depth
    assert tree_series[2] < 0.8
    # at every non-zero loss rate flooding dominates tree-cast
    for flood_ratio, tree_ratio in zip(flood_series[1:], tree_series[1:]):
        assert flood_ratio > tree_ratio

    benchmark(lambda: run_flood(graph, source, loss_rate=0.2, loss_seed=1))

    report(
        "a5_message_loss",
        render_table(
            ["loss rate", "flood delivery", "treecast delivery", "gossip delivery"],
            rows,
            title=f"A5: delivery ratio vs per-message loss — LHG(n={N}, k={K}), {SEEDS} seeds",
        ),
    )
