"""Experiment F4 — latency crossover: where the LHG starts winning.

At tiny n the Harary circulant and the LHG have comparable diameters
(both a couple of hops); the LHG's advantage appears as soon as the
ring gets long and then grows without bound.  The series reports the
latency ratio Harary/LHG and asserts: ratio ≥ 1 beyond the crossover,
monotone-ish growth, and a large factor by n ≈ 1000.
"""

from __future__ import annotations

from repro.analysis.sweep import geometric_sizes
from repro.analysis.tables import render_series
from repro.core.existence import build_lhg
from repro.graphs.generators.harary import harary_graph
from repro.graphs.traversal import diameter

K = 3
MAX_N = 1536


def test_f4_crossover(benchmark, report):
    rows = []
    for n in geometric_sizes(2 * K, MAX_N, factor=2):
        lhg, _ = build_lhg(n, K)
        lhg_diam = diameter(lhg)
        harary_diam = diameter(harary_graph(K, n))
        rows.append((n, harary_diam, lhg_diam, round(harary_diam / lhg_diam, 2)))

    benchmark(lambda: build_lhg(MAX_N, K))

    ratios = [r[3] for r in rows]
    # crossover: by n = 4k the LHG never loses, and the factor keeps growing
    assert all(r >= 1.0 for r in ratios[2:])
    assert ratios[-1] > 15
    assert ratios[-1] > ratios[len(ratios) // 2]

    report(
        "f4_crossover",
        render_series(
            "n",
            ["harary diam", "lhg diam", "ratio"],
            rows,
            title=f"F4: Harary/LHG latency ratio vs n (k={K})",
        ),
    )
