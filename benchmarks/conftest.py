"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one table or figure of the
evaluation (see DESIGN.md §3 and EXPERIMENTS.md).  Conventions:

* each experiment is a single pytest-benchmark test, so
  ``pytest benchmarks/ --benchmark-only`` runs the whole harness;
* the regenerated table/series is printed AND written to
  ``benchmarks/results/<experiment>.txt`` so the numbers survive the
  run (EXPERIMENTS.md quotes those files);
* every experiment *asserts its shape* — who wins, what grows how —
  so a regression in any construction breaks the harness loudly.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report():
    """Return a callable that records an experiment's rendered table."""

    def write(experiment: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text + "\n")
        # also emit to the terminal when run with -s
        print(f"\n{text}", file=sys.stderr)

    return write
