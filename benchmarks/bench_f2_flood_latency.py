"""Experiment F2 — flooding latency: rounds to full coverage vs n.

With unit link latency, simulated completion time equals the source's
eccentricity, so this is the diameter experiment (F1) re-measured at the
protocol level: LHG floods complete in O(log n) rounds, Harary floods in
Θ(n/k) rounds.  Worst-case source (max eccentricity) reported.
"""

from __future__ import annotations

import math

from repro.analysis.stats import growth_exponent, is_roughly_logarithmic
from repro.analysis.sweep import geometric_sizes
from repro.analysis.tables import render_series
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood
from repro.graphs.generators.harary import harary_graph

K = 4
MAX_N = 1024
SOURCE_SAMPLES = 4


def _worst_latency(graph) -> float:
    nodes = graph.nodes()
    picks = nodes[:: max(1, len(nodes) // SOURCE_SAMPLES)][:SOURCE_SAMPLES]
    worst = 0.0
    for source in picks:
        result = run_flood(graph, source)
        assert result.fully_covered
        worst = max(worst, result.completion_time)
    return worst


def test_f2_flood_latency(benchmark, report):
    rows = []
    for n in geometric_sizes(2 * K, MAX_N):
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        rows.append((n, _worst_latency(harary), _worst_latency(lhg)))

    timed, _ = build_lhg(MAX_N, K)
    source = timed.nodes()[0]
    benchmark(lambda: run_flood(timed, source))

    ns = [r[0] for r in rows]
    harary_latency = [r[1] for r in rows]
    lhg_latency = [r[2] for r in rows]
    tail = slice(len(ns) // 2, None)
    assert growth_exponent(ns[tail], harary_latency[tail]) > 0.7
    assert is_roughly_logarithmic(ns, lhg_latency)
    for n, latency in zip(ns, lhg_latency):
        assert latency <= 4 * math.log2(n) + 4
    assert lhg_latency[-1] < harary_latency[-1] / 8

    report(
        "f2_flood_latency",
        render_series(
            "n",
            [f"harary(k={K}) rounds", f"lhg(k={K}) rounds"],
            rows,
            title=f"F2: flooding completion time vs n (k={K}, unit latency)",
        ),
    )
