"""Experiment F12 — chaos campaign: ARQ closes every recoverable gap.

The acceptance sweep for the crash-recovery fault model: run the
standard scenario grid (message loss, duplication/reordering, link
flapping, transient partition, crash-and-recover) over LHG(n=64, k=4)
with plain ReliableFlood and its ARQ-wrapped form, checking the
campaign invariants after every cell.

The shape asserted here is the point of the ARQ layer: plain
ReliableFlood's *fixed* retry window loses survivors whenever an outage
outlives it (flapping, partition-heal, crash-recover), while the
ARQ wrapper's exponential-backoff budget rides out every transient
fault and reaches 100% survivor coverage in every scenario — with all
invariants (quiescence, no delivery to crashed nodes, bounded
retransmissions) green across the whole matrix.
"""

from __future__ import annotations

from repro.core.existence import build_lhg
from repro.robustness import ChaosCampaign

N, K, SEED = 64, 4, 0

PLAIN = "reliable-flood"
ARQ = "arq-reliable-flood"


def test_f12_chaos_campaign(benchmark, report):
    graph, _ = build_lhg(N, K)
    campaign = ChaosCampaign([(graph.name, graph)], seeds=(SEED,))
    matrix = campaign.run()

    # every cell of the grid upheld every invariant
    assert matrix.all_green, matrix.violations

    scenarios = sorted({cell.scenario for cell in matrix.cells})
    assert len(scenarios) == 7  # baseline, 2×loss, dup-reorder, + 3 outages

    plain_failed = []
    for scenario in scenarios:
        (plain,) = matrix.select(scenario=scenario, protocol=PLAIN)
        (arq,) = matrix.select(scenario=scenario, protocol=ARQ)
        # the guarantee: ARQ covers the full survivor component everywhere
        assert arq.fully_covered, (scenario, arq)
        if not plain.fully_covered:
            plain_failed.append(scenario)

    # the fixed retry window must lose at least the long-outage scenarios
    assert set(plain_failed) >= {"flapping", "partition-heal", "crash-recover"}
    # ...but never the fault-free row
    assert "baseline" not in plain_failed

    # determinism: re-running a cell reproduces it exactly
    scenario = next(s for s in campaign.scenarios if s.name == "crash-recover")
    spec = next(p for p in campaign.protocols if p.name == ARQ)
    (first,) = matrix.select(scenario="crash-recover", protocol=ARQ)
    again = campaign.run_cell(graph.name, graph, spec, scenario, SEED)
    assert again == first

    benchmark(
        lambda: campaign.run_cell(graph.name, graph, spec, scenario, SEED)
    )

    report(
        "f12_chaos",
        matrix.render(
            title=(
                f"F12: chaos campaign — LHG(n={N}, k={K}), seed {SEED}; "
                f"plain loses {sorted(plain_failed)}"
            )
        ),
    )
