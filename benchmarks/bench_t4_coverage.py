"""Experiment T4 — construction coverage: which (n, k) each rule reaches.

The arbitrary-n motivation, quantified.  For each k we count, over
n ∈ [2k, 2k + SPAN], how many sizes each rule can build, list the JD
rule's gaps, and contrast with the special families (hypercube, de
Bruijn, butterfly) that exist only at exponentially sparse sizes.
Shape assertions: K-TREE/K-DIAMOND cover everything (EX ⇔ n ≥ 2k); the
JD gap count grows with the horizon; special families cover almost
nothing.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import coverage_table
from repro.core.jenkins_demers import jd_gap_sizes
from repro.graphs.generators.structured import special_family_coverage

KS = (3, 4, 5, 6, 8)
SPAN = 100


def test_t4_coverage(benchmark, report):
    rows = []
    for k in KS:
        table = coverage_table(k, 2 * k + SPAN)
        total = len(table)
        jd_count = sum(1 for _, jd, _, _ in table if jd)
        ktree_count = sum(1 for _, _, kt, _ in table if kt)
        kdiamond_count = sum(1 for _, _, _, kd in table if kd)
        gaps = jd_gap_sizes(k, 2 * k + SPAN)
        rows.append(
            (
                k,
                total,
                jd_count,
                ktree_count,
                kdiamond_count,
                len(gaps),
                ",".join(map(str, gaps[:6])) + ",...",
            )
        )
        assert ktree_count == total
        assert kdiamond_count == total
        assert jd_count < total
        # gaps keep appearing: horizon doubling grows the gap list
        assert len(jd_gap_sizes(k, 2 * k + 2 * SPAN)) > len(gaps)

    special = sorted({n for _, n in special_family_coverage(2 * 8 + SPAN)})
    rows.append(
        (
            "special",
            SPAN + 1,
            "-",
            "-",
            "-",
            len(special),
            ",".join(map(str, special)),
        )
    )
    assert len(special) < (SPAN + 1) // 5

    benchmark(lambda: coverage_table(6, 2 * 6 + SPAN))

    report(
        "t4_coverage",
        render_table(
            ["k", "sizes", "jd", "k-tree", "k-diamond", "jd gaps", "gap examples"],
            rows,
            title=f"T4: buildable sizes per rule over n in [2k, 2k+{SPAN}]",
        ),
    )
