"""Experiment F5 — construction cost: build time scales ~linearly in n.

An overlay controller rebuilds the topology on every membership event,
so construction cost is an operational number, not a curiosity.  The
series times :func:`build_lhg` across a geometric n ladder and asserts
the growth exponent stays near 1 (no quadratic blow-up).
"""

from __future__ import annotations

import time

from repro.analysis.stats import growth_exponent
from repro.analysis.tables import render_series
from repro.core.existence import build_lhg

K = 4
SIZES = (128, 256, 512, 1024, 2048, 4096, 8192)


def _build_time(n: int, repetitions: int = 3) -> float:
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        graph, _ = build_lhg(n, K)
        best = min(best, time.perf_counter() - start)
        assert graph.number_of_nodes() == n
    return best


def test_f5_construction_cost(benchmark, report):
    rows = []
    for n in SIZES:
        rows.append((n, round(_build_time(n) * 1e3, 3)))

    benchmark(lambda: build_lhg(SIZES[-1], K))

    ns = [r[0] for r in rows]
    times = [max(r[1], 1e-6) for r in rows]
    exponent = growth_exponent(ns[2:], times[2:])
    # linear-ish: well below quadratic even with noise
    assert exponent < 1.7, exponent

    report(
        "f5_construction",
        render_series(
            "n",
            ["build time (ms)"],
            rows,
            title=f"F5: construction time vs n (k={K}), growth exponent "
            f"{exponent:.2f}",
        ),
    )
