"""Experiment F1 — diameter scaling: Harary Θ(n/k) vs LHG O(log n).

The paper's headline figure.  For k ∈ {3, 4, 6} we sweep n geometrically
and record the exact diameter of the classic Harary graph H(k, n) and of
the LHG construction.  Shape assertions: the Harary growth exponent is
≈ 1 (linear), the LHG series fits a logarithmic envelope, and the gap
widens monotonically.
"""

from __future__ import annotations

import math

from repro.analysis.stats import growth_exponent, is_roughly_logarithmic
from repro.analysis.sweep import geometric_sizes
from repro.analysis.tables import render_series
from repro.core.existence import build_lhg
from repro.graphs.generators.harary import harary_graph
from repro.graphs.traversal import diameter

KS = (3, 4, 6)
MAX_N = 2048


def _series(k: int):
    rows = []
    for n in geometric_sizes(max(2 * k, 8), MAX_N):
        if n <= k or n < 2 * k:
            continue
        harary_diam = diameter(harary_graph(k, n))
        lhg, _ = build_lhg(n, k)
        rows.append((n, harary_diam, diameter(lhg)))
    return rows


def test_f1_diameter_scaling(benchmark, report):
    all_rows = {k: _series(k) for k in KS}
    # time a representative piece: exact diameter of a mid-size LHG
    timed, _ = build_lhg(512, 4)
    benchmark(lambda: diameter(timed))

    lines = []
    for k, rows in all_rows.items():
        lines.append(
            render_series(
                "n",
                [f"harary(k={k})", f"lhg(k={k})"],
                rows,
                title=f"F1: diameter vs n (k={k})",
            )
        )
        ns = [r[0] for r in rows]
        harary_diams = [r[1] for r in rows]
        lhg_diams = [r[2] for r in rows]

        # Harary: linear in n (exponent near 1 over the tail).
        tail = slice(len(ns) // 2, None)
        assert growth_exponent(ns[tail], harary_diams[tail]) > 0.75, k
        # LHG: logarithmic envelope.
        assert is_roughly_logarithmic(ns, lhg_diams), k
        for n, diam in zip(ns, lhg_diams):
            assert diam <= 4 * math.log2(n) + 4
        # The winner and the widening gap.
        assert lhg_diams[-1] < harary_diams[-1]
        assert harary_diams[-1] / lhg_diams[-1] > 10
    report("f1_diameter", "\n\n".join(lines))
