"""Experiment T1 — edge minimality: LHG edge counts vs Harary's ⌈kn/2⌉.

Link minimality (Property 3) is what keeps the flooding message bill
low.  This table sweeps n for several k and reports, per construction,
the edge count and its excess over the theoretical minimum ⌈kn/2⌉.
Shape assertions: regular points hit the bound exactly; no construction
ever exceeds it by more than the added-leaf envelope (2k−3)·k/2 + 1.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg, regular_exists
from repro.core.ktree import ktree_graph
from repro.graphs.generators.harary import harary_minimum_edges

KS = (3, 4, 5, 6)
SPAN = 20  # sizes per k: 2k .. 2k + SPAN


def test_t1_edge_minimality(benchmark, report):
    rows = []
    for k in KS:
        for n in range(2 * k, 2 * k + SPAN + 1):
            graph, cert = build_lhg(n, k)
            minimum = harary_minimum_edges(k, n)
            excess = graph.number_of_edges() - minimum
            rows.append(
                (
                    k,
                    n,
                    cert.rule,
                    graph.number_of_edges(),
                    minimum,
                    excess,
                    regular_exists(n, k, "k-diamond"),
                )
            )

    benchmark(lambda: ktree_graph(2 * 6 + SPAN, 6))

    table = render_table(
        ["k", "n", "rule", "edges", "harary-min", "excess", "regular-point"],
        rows,
        title="T1: edge counts vs the Harary minimum",
    )
    for k, n, _, edges, minimum, excess, regular_point in rows:
        envelope = (2 * k - 3) * k / 2 + 1
        assert 0 <= excess <= envelope, (k, n)
        if regular_point:
            assert excess == 0, (k, n)
    # exactly the regular points hit the bound: one size in every k-1
    exact = sum(1 for row in rows if row[5] == 0)
    regular_points = sum(1 for row in rows if row[6])
    assert exact == regular_points
    assert exact >= len(rows) // 6
    report("t1_edges", table)
