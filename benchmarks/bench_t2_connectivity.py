"""Experiment T2 — fault tolerance: κ = λ = k, exhaustively and at scale.

The paper's resilience claim.  Small instances are verified by
*exhaustive* removal of every (k−1)-subset of nodes; larger instances by
exact max-flow connectivity.  The table reports κ, λ, and the exhaustive
verdict per (n, k).
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.graphs.connectivity import (
    edge_connectivity,
    is_k_node_connected,
    node_connectivity,
)
from repro.graphs.traversal import is_connected

EXHAUSTIVE_PAIRS = [(6, 3), (8, 3), (10, 3), (8, 4), (11, 4), (10, 5)]
FLOW_PAIRS = [(30, 3), (61, 3), (50, 4), (83, 4), (72, 6)]


def _exhaustive_tolerates(graph, k: int) -> bool:
    return all(
        is_connected(graph.without_nodes(victims))
        for victims in combinations(graph.nodes(), k - 1)
    )


def test_t2_connectivity(benchmark, report):
    rows = []
    for n, k in EXHAUSTIVE_PAIRS:
        graph, cert = build_lhg(n, k)
        kappa = node_connectivity(graph)
        lam = edge_connectivity(graph)
        survived = _exhaustive_tolerates(graph, k)
        rows.append((n, k, cert.rule, kappa, lam, "exhaustive", survived))
        assert kappa == k and lam == k
        assert survived
    for n, k in FLOW_PAIRS:
        graph, cert = build_lhg(n, k)
        kappa = node_connectivity(graph)
        lam = edge_connectivity(graph)
        rows.append((n, k, cert.rule, kappa, lam, "max-flow", True))
        assert kappa == k and lam == k

    timed, _ = build_lhg(61, 3)
    benchmark(lambda: is_k_node_connected(timed, 3))

    report(
        "t2_connectivity",
        render_table(
            ["n", "k", "rule", "kappa", "lambda", "method", "tolerates k-1"],
            rows,
            title="T2: connectivity of the constructions",
        ),
    )
