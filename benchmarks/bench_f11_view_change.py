"""Experiment F11 — membership convergence: crash → everyone knows.

The in-band view-change pipeline (heartbeat detection → flooded
suspicion reports → coordinator decision → flooded NEW-VIEW) measures
the end-to-end membership convergence latency a view-oriented system
would see.  Its budget decomposes as

    timeout (+ check granularity)     detection at the victims' neighbours
  + O(log n)                          SUSPECT flood to the coordinator
  + decision_delay                    burst batching
  + O(log n)                          NEW-VIEW flood to every survivor

so on an LHG the topology contributes only ~2 log n — the sweep shows
convergence latency nearly flat in n, while the same pipeline on the
linear-diameter Harary circulant pays Θ(n/k) **three times**: suspicion
reports crawl to the coordinator (and may have to detour the long way
around the ring when the crashed block severs the short route — found
the hard way in this experiment's development), the quiet period must
be provisioned to that propagation bound or the view misses late
suspicions, and the NEW-VIEW flood crawls back out.  The quiet period
is therefore set per-topology to diameter + 2 — itself part of the
measured cost.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_view_change
from repro.graphs.generators.harary import harary_graph

K = 4
SIZES = (32, 64, 128, 256)
CRASH_TIME = 10.0


def _converge(graph, crash_count):
    from repro.graphs.traversal import diameter

    coordinator = graph.nodes()[0]
    victims = [
        v for v in graph.nodes()[3 : 3 + crash_count]
    ]
    # the quiet period must cover the report-propagation bound of the
    # DAMAGED topology (reports detour around the crashed block) — a
    # real provisioning cost the linear-diameter baseline pays in full
    damaged_diameter = diameter(graph.without_nodes(victims))
    quiet = damaged_diameter + 2.0
    horizon = CRASH_TIME + 3.5 + quiet + 3 * damaged_diameter + 20
    report = run_view_change(
        graph, coordinator, victims, CRASH_TIME, decision_delay=quiet,
        horizon=horizon,
    )
    assert report.converged, (graph.name, crash_count)
    return report.last_adoption - CRASH_TIME


def test_f11_view_change(benchmark, report):
    rows = []
    for n in SIZES:
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        lhg_latency = _converge(lhg, K - 1)
        harary_latency = _converge(harary, K - 1)
        rows.append(
            (n, lhg_latency, harary_latency, round(harary_latency / lhg_latency, 2))
        )

    lhg_series = [r[1] for r in rows]
    harary_series = [r[2] for r in rows]
    # LHG convergence is ~flat in n (detection dominates); Harary grows
    assert lhg_series[-1] <= lhg_series[0] + 12
    assert harary_series[-1] > harary_series[0] * 2
    assert rows[-1][3] > 3

    lhg, _ = build_lhg(SIZES[0], K)
    coordinator = lhg.nodes()[0]
    victims = lhg.nodes()[3:6]
    benchmark(
        lambda: run_view_change(lhg, coordinator, victims, CRASH_TIME)
    )

    report(
        "f11_view_change",
        render_table(
            ["n", "lhg convergence", "harary convergence", "ratio"],
            rows,
            title=(
                f"F11: crash→all-adopted latency, burst of {K - 1} (k={K}, "
                f"timeout 3.5, quiet period = damaged diameter + 2)"
            ),
        ),
    )
