"""Experiment A3 — spectral comparison: LHG vs Harary vs random expander.

Algebraic connectivity (Fiedler λ₂) certifies both robustness (λ₂ ≤ κ)
and expansion (Cheeger: h ≥ λ₂/2).  The table compares, at matched
(n, k): the LHG, the Harary circulant, a random k-regular graph, and a
Law–Siu Hamiltonian-cycle expander.  Shapes: the ring-like Harary's λ₂
collapses as 1/n²; the LHG sits orders of magnitude above it (its gap
decays only polylogarithmically) though below a true random expander —
the price of determinism, which the paper trades for guaranteed
connectivity.
"""

from __future__ import annotations

from repro.analysis.spectral import algebraic_connectivity, spectral_gap
from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.graphs.connectivity import node_connectivity
from repro.graphs.generators.harary import harary_graph
from repro.graphs.generators.random import (
    random_hamiltonian_expander,
    random_regular_graph,
)

K = 4
SIZES = (32, 62, 128, 254)


def test_a3_spectral(benchmark, report):
    rows = []
    for n in SIZES:
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        random_reg = random_regular_graph(K, n, seed=n)
        expander = random_hamiltonian_expander(n, K // 2, seed=n)
        rows.append(
            (
                n,
                round(algebraic_connectivity(lhg), 4),
                round(algebraic_connectivity(harary), 4),
                round(algebraic_connectivity(random_reg), 4),
                round(algebraic_connectivity(expander), 4),
            )
        )

    for n, lhg_l2, harary_l2, random_l2, expander_l2 in rows:
        # Fiedler bound sanity: lambda_2 <= kappa = k everywhere
        assert lhg_l2 <= K + 1e-6
        # LHG always dominates the circulant...
        assert lhg_l2 > harary_l2
        # ...and true random expanders dominate the deterministic LHG
        # (the price of guaranteed-rather-than-probable connectivity)
        if n >= 62:
            assert expander_l2 > lhg_l2

    # the LHG/Harary ratio widens with n
    first_ratio = rows[0][1] / rows[0][2]
    last_ratio = rows[-1][1] / rows[-1][2]
    assert last_ratio > first_ratio

    timed, _ = build_lhg(SIZES[-1], K)
    benchmark(lambda: spectral_gap(timed))

    report(
        "a3_spectral",
        render_table(
            ["n", "lhg λ2", "harary λ2", "random k-reg λ2", "expander λ2"],
            rows,
            title=f"A3: algebraic connectivity at matched (n, k={K})",
        ),
    )
