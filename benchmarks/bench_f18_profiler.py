"""Experiment F18 — sampling-profiler overhead and the flood-path profile.

Runs repeated floods on LHG(n=1024, k=4) two ways, interleaved so both
arms see the same thermal/frequency envelope:

* **plain** — the event simulator unprofiled;
* **profiled** — the same floods under the 100 Hz signal-backed
  sampling profiler (:class:`repro.obs.prof.SamplingProfiler`), each
  flood wrapped in an obs span so samples carry span attribution.

Measured and asserted:

* **overhead** — min-of-arm profiled wall over plain wall must stay
  under 5% (the design budget for an always-on profiler);
* **usefulness** — the profile must contain samples, non-empty
  collapsed stacks, and span attribution for the ``flood`` span.

The collapsed-stack profile of the flooding hot path is committed as
``results/PROFILE_flood.collapsed`` (loads in speedscope or
flamegraph.pl) and the top hot frames land in ``results/
f18_profiler.txt``.  The overhead fraction is written to
``results/BENCH_profiler.json`` — a unitless metric, so the perf
ledger gates it on every host.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro import obs
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood
from repro.obs.prof import SamplingProfiler
from repro.perf import emit_bench

N, K = 1024, 4
HZ = 100.0
REPEATS = 5
FLOODS_PER_ARM = 3
OVERHEAD_BUDGET = 0.05

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _flood_arm(graph, source) -> float:
    start = time.perf_counter()
    for _ in range(FLOODS_PER_ARM):
        with obs.span("flood", n=N, k=K):
            run_flood(graph, source)
    return time.perf_counter() - start


def test_f18_profiler_overhead(benchmark, report):
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    obs.install()
    try:
        # warm-up: JIT-free Python, but page caches and branch history
        _flood_arm(graph, source)

        plain_walls, profiled_walls = [], []
        profile = None
        for _ in range(REPEATS):
            plain_walls.append(_flood_arm(graph, source))
            profiler = SamplingProfiler(hz=HZ)
            with profiler:
                profiled_walls.append(_flood_arm(graph, source))
            profile = profiler.profile
    finally:
        obs.uninstall()

    overhead = min(profiled_walls) / min(plain_walls) - 1.0
    assert overhead < OVERHEAD_BUDGET, (
        f"profiler overhead {overhead:.1%} blew the {OVERHEAD_BUDGET:.0%} "
        f"budget at {HZ:g} Hz"
    )

    # the profile is useful: samples landed, stacks collapsed, spans
    # attributed to the flood span
    assert profile.sample_count > 0
    collapsed = profile.collapsed()
    assert collapsed and all(" " in line for line in collapsed)
    assert any(line.startswith("span:flood;") for line in collapsed)
    top = profile.top_functions(3)
    assert top, "no hot frames resolved"

    RESULTS_DIR.mkdir(exist_ok=True)
    stacks = profile.write_collapsed(RESULTS_DIR / "PROFILE_flood.collapsed")
    assert stacks > 0

    emit_bench(
        RESULTS_DIR / "BENCH_profiler.json",
        "f18_profiler",
        {
            "plain_wall_seconds": plain_walls,
            "profiled_wall_seconds": profiled_walls,
            "overhead_fraction": [overhead],
        },
        payload={
            "topology": {"n": N, "k": K},
            "hz": HZ,
            "backend": profile.backend,
            "repeats": REPEATS,
            "floods_per_arm": FLOODS_PER_ARM,
            "cpu_count": os.cpu_count(),
            "overhead_budget_fraction": OVERHEAD_BUDGET,
            "samples": profile.sample_count,
            "collapsed_stacks": stacks,
            "top_frames": [
                {"frame": frame, "self_samples": count}
                for frame, count in top
            ],
        },
        units={"overhead_fraction": "fraction"},
    )

    lines = [
        f"F18: sampling profiler — LHG(n={N}, k={K}), {HZ:g} Hz "
        f"({profile.backend} backend), {FLOODS_PER_ARM} floods/arm",
        f"  plain:    {min(plain_walls):.3f}s   profiled: "
        f"{min(profiled_walls):.3f}s   overhead {overhead:+.2%} "
        f"(budget <{OVERHEAD_BUDGET:.0%})",
        f"  profile:  {profile.sample_count} samples, {stacks} collapsed "
        f"stacks -> results/PROFILE_flood.collapsed",
        "  top-3 hot frames (self samples):",
    ]
    for frame, count in top:
        lines.append(
            f"    {count:6d} ({count / profile.sample_count:5.1%})  {frame}"
        )
    report("f18_profiler", "\n".join(lines))

    # time one profiled flood pass as the pytest-benchmark sample
    def profiled_flood():
        with SamplingProfiler(hz=HZ):
            return run_flood(graph, source)

    benchmark(profiled_flood)
