"""Experiment F17 — million-node chaos: targeted k−1 attacks, certified.

T8 proved the pristine construction scales; F17 proves its *tolerance
claim* scales.  Every targeted attack within the paper's k−1 budget —
derived arithmetically from the JD pasting structure by
:func:`~repro.robustness.attacks.targeted_cut_attacks` (leaf
isolation, attachment-link cuts, mixed damage, root-copy crashes,
single-failure probes) — is replayed against the million-node implicit
oracle, and for each one:

1. the failure-aware synchronous-round flood
   (:func:`~repro.flooding.rounds.round_flood` with the plan's
   schedule) must cover **100 % of the reachable survivors** from a
   surviving source;
2. the survivor component — a lazy
   :class:`~repro.graphs.faultview.FaultView`, never materialised —
   must recertify conclusively clean under
   :func:`~repro.robustness.invariants.recertify_survivors`
   (BFS connectivity witness, damage-frontier degree floors, sampled
   local-cut Dinic witnesses);
3. the flood's survivor arithmetic must agree with the view's
   (``alive`` = n − crashes, ``reachable`` = component size).

Shape assertions: full survivor coverage and a clean certification for
*every* plan; peak RSS under 1 GB for the whole campaign.  The
scorecard lands in ``results/BENCH_scale_chaos.json``.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.perf import emit_bench

from repro.core.properties import logarithmic_diameter_bound
from repro.flooding.rounds import round_flood
from repro.graphs.faultview import component_size
from repro.flooding.failures import survivors
from repro.graphs.faultview import FaultView
from repro.graphs.implicit import ImplicitJDOracle
from repro.robustness.attacks import targeted_cut_attacks
from repro.robustness.invariants import recertify_survivors

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N = 1_000_000
K = 3
RSS_CEILING_BYTES = 1 << 30  # 1 GB


def _peak_rss_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def test_f17_scale_chaos(benchmark, report):
    t0 = time.perf_counter()
    oracle = ImplicitJDOracle(N, K)
    plans = targeted_cut_attacks(oracle)
    derive_seconds = time.perf_counter() - t0
    assert plans, "no attack plans derived"

    rows = []
    for plan in plans:
        schedule = plan.schedule()
        source = plan.surviving_source(oracle)

        t0 = time.perf_counter()
        flood = round_flood(oracle, source, schedule=schedule)
        flood_seconds = time.perf_counter() - t0

        view = survivors(oracle, schedule)
        assert isinstance(view, FaultView), type(view)
        assert view.damage == plan.damage

        # survivor arithmetic agrees between flood and view
        assert flood.alive == view.num_nodes() == N - len(plan.crashes)
        assert flood.reachable == component_size(view, source)

        # the tolerance claim: damage < k leaves one component, and the
        # failure-aware flood covers every reachable survivor
        assert flood.reachable == flood.alive, plan.name
        assert flood.fully_covered, plan.name
        assert flood.covered == flood.alive, plan.name
        assert flood.rounds <= logarithmic_diameter_bound(N, K) + plan.damage

        t0 = time.perf_counter()
        violations = recertify_survivors(view, K)
        certify_seconds = time.perf_counter() - t0
        assert violations == [], (plan.name, [str(v) for v in violations])

        rows.append(
            {
                "attack": plan.name,
                "description": plan.description,
                "crashes": len(plan.crashes),
                "link_kills": len(plan.link_kills),
                "source": source,
                "alive": flood.alive,
                "reachable": flood.reachable,
                "covered": flood.covered,
                "coverage": flood.covered / flood.alive,
                "messages": flood.messages,
                "rounds": flood.rounds,
                "flood_seconds": round(flood_seconds, 4),
                "recertify_seconds": round(certify_seconds, 4),
            }
        )

    peak_rss = _peak_rss_bytes()
    assert peak_rss < RSS_CEILING_BYTES, f"peak RSS {peak_rss} >= 1 GB"
    assert all(row["coverage"] == 1.0 for row in rows)

    # benchmark the hot attack-derivation path (arithmetic, O(k) per plan)
    benchmark(lambda: targeted_cut_attacks(oracle))

    payload = {
        "topology": {"n": N, "k": K, "rule": oracle.rule},
        "edges": oracle.number_of_edges(),
        "attack_budget": K - 1,
        "plans": len(plans),
        "survivor_coverage": 1.0,
        "attacks": rows,
        "peak_rss_bytes": peak_rss,
        "rss_ceiling_bytes": RSS_CEILING_BYTES,
        "derive_seconds": round(derive_seconds, 4),
    }
    worst_rounds = max(row["rounds"] for row in rows)
    total_flood = sum(row["flood_seconds"] for row in rows)
    total_cert = sum(row["recertify_seconds"] for row in rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_scale_chaos.json",
        "f17_scale_chaos",
        {
            "derive_seconds": [derive_seconds],
            "flood_seconds_total": [total_flood],
            "recertify_seconds_total": [total_cert],
            "survivor_coverage": [1.0],
        },
        payload=payload,
        units={"survivor_coverage": "fraction"},
        directions={"survivor_coverage": "higher"},
    )
    lines = [
        f"F17: million-node chaos — JD LHG(n={N}, k={K}), "
        f"{len(plans)} targeted k−1 attacks",
        f"  coverage: 100% of survivors under every plan "
        f"(worst completion {worst_rounds} rounds)",
        f"  recertification: all plans conclusive and clean "
        f"({total_cert:.2f}s total)",
        f"  floods: {total_flood:.2f}s total across plans",
        f"  peak RSS: {peak_rss / 1e6:.1f} MB (ceiling 1073.7 MB)",
    ]
    report("f17_scale_chaos", "\n".join(lines))
