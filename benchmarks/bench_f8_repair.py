"""Experiment F8 — self-healing: repairing the overlay between bursts.

k−1 fault tolerance is a *per-burst* budget: an overlay that repairs
after each burst survives an unbounded total number of crashes.  The
table runs an 8-burst campaign (each burst k−1 random members) against
a k = 4, 40-member overlay and reports, per burst: connectivity of the
damaged topology (never 0 — that is the guarantee), connectivity after
repair (always k while n ≥ 2k), and the repair's edge bill.
"""

from __future__ import annotations

import random

from repro.analysis.tables import render_table
from repro.overlay.membership import LHGOverlay
from repro.overlay.repair import execute_repair, plan_repair

K, START_SIZE, BURSTS = 4, 40, 8


def test_f8_repair(benchmark, report):
    overlay = LHGOverlay(k=K)
    for i in range(START_SIZE):
        overlay.join(f"p{i}")
    rng = random.Random(42)

    rows = []
    total_failures = 0
    for burst_index in range(BURSTS):
        victims = rng.sample(overlay.members, K - 1)
        reviction = execute_repair(overlay, victims)
        total_failures += len(victims)
        rows.append(
            (
                burst_index + 1,
                total_failures,
                overlay.size,
                reviction.connectivity_before,
                reviction.connectivity_after,
                reviction.plan.total_edge_work,
            )
        )
        # the guarantee: a k-1 burst never disconnects the overlay
        assert reviction.connectivity_before >= 1
        # and repair restores full strength while n >= 2k
        if overlay.size >= 2 * K:
            assert reviction.connectivity_after == K
    assert total_failures > K  # far beyond the single-burst budget

    # benchmark the planning step on a fresh overlay
    fresh = LHGOverlay(k=K)
    for i in range(START_SIZE):
        fresh.join(f"q{i}")
    victims = fresh.members[:3]
    benchmark(lambda: plan_repair(fresh, victims))

    report(
        "f8_repair",
        render_table(
            [
                "burst",
                "total crashed",
                "members left",
                "kappa damaged",
                "kappa repaired",
                "edge work",
            ],
            rows,
            title=(
                f"F8: crash-repair campaign — k={K}, bursts of {K - 1}, "
                f"{START_SIZE} initial members"
            ),
        ),
    )
