"""Experiment F13 — the parallel execution engine: speedup without drift.

Runs the standard chaos-campaign grid (7 scenarios × 2 protocols × 4
seeds = 56 cells) on LHG(n=256, k=4) serially and with 2 / 4 / 8
workers, and measures two things:

* **Correctness**: every fanned-out run's resilience matrix must be
  *byte-identical* to the serial one (cells and rendered table) — the
  engine's core guarantee, asserted unconditionally.
* **Throughput**: the wall-clock speedup curve, written to
  ``results/BENCH_parallel.json`` alongside per-cell timings and the
  construction-cache hit rate.  The ≥ 2× speedup-at-4-workers shape is
  asserted only on hardware with ≥ 4 cores; on smaller machines the
  curve is still recorded (a process pool cannot beat the core count).
"""

from __future__ import annotations

import os
import pathlib

from repro.exec import GRAPH_CACHE, TopologySpec, fork_available
from repro.perf import emit_bench
from repro.robustness import ChaosCampaign

N, K = 256, 4
SEEDS = (0, 1, 2, 3)
WORKER_COUNTS = (1, 2, 4, 8)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _campaign() -> ChaosCampaign:
    spec = TopologySpec(N, K)
    return ChaosCampaign([(spec.label, spec)], seeds=SEEDS)


def test_f13_parallel_engine(benchmark, report):
    GRAPH_CACHE.clear()
    runs = {}
    for workers in WORKER_COUNTS:
        campaign = _campaign()
        matrix = campaign.run(workers=workers)
        runs[workers] = (matrix, campaign.last_report)

    serial_matrix, serial_report = runs[1]
    assert serial_matrix.all_green, serial_matrix.violations
    assert len(serial_matrix.cells) == 7 * 2 * len(SEEDS)

    # correctness: parallel fan-out is invisible in the results
    serial_rendered = serial_matrix.render()
    for workers, (matrix, _) in runs.items():
        assert matrix.cells == serial_matrix.cells, f"drift at workers={workers}"
        assert matrix.render() == serial_rendered, f"drift at workers={workers}"

    # the construction cache collapsed every rebuild into one hit stream:
    # 1 miss for the first resolve, hits for every later campaign
    assert GRAPH_CACHE.stats()["misses"] == 1
    assert GRAPH_CACHE.stats()["hits"] >= len(WORKER_COUNTS) - 1

    serial_wall = serial_report.wall_seconds
    curve = []
    for workers in WORKER_COUNTS:
        _, run_report = runs[workers]
        curve.append(
            {
                "workers": workers,
                "mode": run_report.mode,
                "effective_workers": run_report.workers,
                "wall_seconds": round(run_report.wall_seconds, 4),
                "speedup": round(serial_wall / run_report.wall_seconds, 3)
                if run_report.wall_seconds
                else None,
                "cells": run_report.cells,
                "total_cell_seconds": round(
                    run_report.total_cell_seconds(), 4
                ),
                "parallel_efficiency": round(
                    run_report.parallel_efficiency(), 3
                ),
            }
        )

    payload = {
        "topology": {"n": N, "k": K},
        "grid": {
            "scenarios": 7,
            "protocols": 2,
            "seeds": len(SEEDS),
            "cells": len(serial_matrix.cells),
        },
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "deterministic": True,
        "graph_cache": GRAPH_CACHE.stats(),
        "curve": curve,
        "slowest_cells": [
            {"label": t.label, "seconds": round(t.seconds, 4)}
            for t in serial_report.slowest(5)
        ],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_parallel.json",
        "f13_parallel",
        {"serial_wall_seconds": [serial_wall]},
        payload=payload,
    )

    # throughput shape — only meaningful when the hardware can fan out
    if fork_available() and (os.cpu_count() or 1) >= 4:
        at_4 = next(c for c in curve if c["workers"] == 4)
        assert at_4["speedup"] >= 2.0, curve

    lines = [
        f"F13: parallel campaign engine — LHG(n={N}, k={K}), "
        f"{len(serial_matrix.cells)} cells, {os.cpu_count()} core(s)"
    ]
    for point in curve:
        lines.append(
            f"  workers={point['workers']}: {point['wall_seconds']:.2f}s "
            f"({point['mode']}, speedup {point['speedup']}x, "
            f"efficiency {point['parallel_efficiency']})"
        )
    lines.append(f"  graph cache: {GRAPH_CACHE.stats()}")
    report("f13_parallel", "\n".join(lines))

    # time one serial grid pass as the pytest-benchmark sample
    benchmark(lambda: _campaign().run(workers=1))
