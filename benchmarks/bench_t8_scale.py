"""Experiment T8 — million-node LHGs under a 1 GB memory ceiling.

The paper's constructions are *for* large groups, but every earlier
experiment tops out in the thousands because the dict-of-sets graph and
the Dinic-backed property checkers are priced for exactness, not scale.
This experiment exercises the scale substrate end to end at n = 10⁶:

1. build the Jenkins–Demers LHG as an :class:`ImplicitJDOracle` —
   O(1) state, neighbours by arithmetic, the graph never materialises;
2. certify Properties 1–4 by **structural certificate**
   (:meth:`structural_proofs`) — every witness must be conclusive and
   hold (the certificates themselves are pinned against the exact
   Dinic checkers over the full small-(n, k) census in
   ``tests/test_structural_certificates.py``);
3. compile the oracle to a :class:`CSRGraph` — flat ``array('q')``
   adjacency, no label table (ids are dense ints);
4. flood from node 0 in synchronous rounds (:func:`round_flood`) and
   require full coverage with the P4 round bound.

Shape assertions: every certificate conclusive and holding; flood
covers all 10⁶ nodes within the logarithmic diameter budget; peak RSS
stays under 1 GB.  The scorecard lands in
``results/BENCH_scale.json``.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro.core.properties import logarithmic_diameter_bound
from repro.perf import emit_bench
from repro.flooding.rounds import round_flood
from repro.graphs.csr import CSRGraph
from repro.graphs.implicit import ImplicitJDOracle

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N = 1_000_000
K = 3
RSS_CEILING_BYTES = 1 << 30  # 1 GB


def _peak_rss_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def test_t8_scale(benchmark, report):
    t0 = time.perf_counter()
    oracle = ImplicitJDOracle(N, K)
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    proofs = oracle.structural_proofs()
    certify_seconds = time.perf_counter() - t0
    assert proofs.conclusive, proofs.summary()
    assert proofs.all_hold, proofs.summary()

    t0 = time.perf_counter()
    csr = CSRGraph.from_oracle(oracle, name=oracle.name)
    compile_seconds = time.perf_counter() - t0
    assert csr.dense_labels
    assert csr.num_nodes() == N
    assert csr.number_of_edges() == oracle.number_of_edges()

    t0 = time.perf_counter()
    flood = round_flood(csr, 0)
    flood_seconds = time.perf_counter() - t0
    assert flood.covered == N
    assert flood.rounds <= logarithmic_diameter_bound(N, K)

    peak_rss = _peak_rss_bytes()
    assert peak_rss < RSS_CEILING_BYTES, f"peak RSS {peak_rss} >= 1 GB"

    # benchmark the hot per-query path: one arithmetic neighbourhood
    benchmark(lambda: oracle.neighbors(N // 2))

    payload = {
        "topology": {"n": N, "k": K, "rule": oracle.rule},
        "edges": oracle.number_of_edges(),
        "height": oracle.height(),
        "properties": {
            w.property_id: {"holds": w.holds, "conclusive": w.conclusive}
            for w in proofs.witnesses
        },
        "flood": {
            "source": 0,
            "covered": flood.covered,
            "messages": flood.messages,
            "rounds": flood.rounds,
            "diameter_budget": logarithmic_diameter_bound(N, K),
        },
        "csr_bytes": csr.nbytes(),
        "peak_rss_bytes": peak_rss,
        "rss_ceiling_bytes": RSS_CEILING_BYTES,
        "seconds": {
            "build": round(build_seconds, 4),
            "certify": round(certify_seconds, 4),
            "csr_compile": round(compile_seconds, 4),
            "flood": round(flood_seconds, 4),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_scale.json",
        "t8_scale",
        {
            "build_seconds": [build_seconds],
            "certify_seconds": [certify_seconds],
            "csr_compile_seconds": [compile_seconds],
            "flood_seconds": [flood_seconds],
        },
        payload=payload,
    )

    lines = [
        f"T8: million-node scale — JD LHG(n={N}, k={K}), "
        f"{oracle.number_of_edges()} edges, height {oracle.height()}",
        f"  certificates: {proofs.summary()}",
        f"  CSR: {csr.nbytes() / 1e6:.1f} MB "
        f"(compile {compile_seconds:.2f}s)",
        f"  flood: covered {flood.covered}/{N} in {flood.rounds} rounds "
        f"(budget {logarithmic_diameter_bound(N, K)}), "
        f"{flood.messages} messages, {flood_seconds:.2f}s",
        f"  peak RSS: {peak_rss / 1e6:.1f} MB (ceiling 1073.7 MB)",
    ]
    report("t8_scale", "\n".join(lines))
