"""Experiment F6 — overlay maintenance cost under churn.

Replaying seeded join/leave traces through the overlay controller, we
measure edge churn (links added + removed) per membership event at
several population scales.  Shape assertions: mean churn stays bounded
by a small multiple of k·height (no O(n) rewiring), and connectivity
never drops below k at the checkpoints.
"""

from __future__ import annotations

import math

from repro.analysis.tables import render_table
from repro.graphs.connectivity import is_k_node_connected
from repro.overlay.churn import churn_summary, generate_trace, replay
from repro.overlay.membership import LHGOverlay

K = 3
POPULATIONS = (12, 24, 48, 96)
EVENTS = 40


def test_f6_churn(benchmark, report):
    rows = []
    for population in POPULATIONS:
        trace = generate_trace(EVENTS, population, K, seed=population)
        costs = replay(trace, K)
        # measure only the steady-state phase (after ramp-up joins)
        steady = costs[-EVENTS:]
        mean, p95, worst = churn_summary(steady)
        rows.append((population, round(mean, 2), p95, worst))
        # churn is polylogarithmic in the population, not linear
        assert mean <= 6 * K * (math.log2(population) + 2), population

    # final-state sanity: a churned overlay is still an LHG topology
    overlay = LHGOverlay(k=K)
    for event in generate_trace(EVENTS, POPULATIONS[0], K, seed=1):
        if event.kind == "join":
            overlay.join(event.member)
        else:
            overlay.leave(event.member)
    assert is_k_node_connected(overlay.topology(), K)

    trace = generate_trace(EVENTS, POPULATIONS[1], K, seed=5)
    benchmark(lambda: replay(trace, K))

    report(
        "f6_churn",
        render_table(
            ["population", "mean churn", "p95 churn", "worst churn"],
            rows,
            title=f"F6: edge churn per membership event (k={K}, {EVENTS} events)",
        ),
    )
