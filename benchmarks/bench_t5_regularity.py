"""Experiment T5 — k-regular coverage: where the minimum-edge LHG exists.

k-regularity (Property 5) marks the absolute minimum kn/2 edges.  The
JD/K-TREE constructions are regular only at n = 2k + 2α(k−1); the
K-DIAMOND extension doubles the density of regular sizes to
n = 2k + α(k−1).  The table counts regular sizes per rule and verifies
each claimed point by building the graph and checking every degree.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import regularity_table
from repro.core.kdiamond import kdiamond_graph, kdiamond_only_regular_sizes
from repro.graphs.properties import is_k_regular

KS = (3, 4, 5, 6)
SPAN = 60


def test_t5_regularity(benchmark, report):
    rows = []
    for k in KS:
        table = regularity_table(k, 2 * k + SPAN)
        jd_count = sum(1 for _, jd, _, _ in table if jd)
        ktree_count = sum(1 for _, _, kt, _ in table if kt)
        kdiamond_count = sum(1 for _, _, _, kd in table if kd)
        only = kdiamond_only_regular_sizes(k, 2 * k + SPAN)
        rows.append((k, jd_count, ktree_count, kdiamond_count, len(only)))

        # REG_K-TREE => REG_K-DIAMOND, and K-DIAMOND has ~2x the points
        assert jd_count == ktree_count
        assert kdiamond_count >= 2 * ktree_count - 2
        # verify a sample of the K-DIAMOND-only points by construction
        for n in only[:4]:
            graph, _ = kdiamond_graph(n, k)
            assert is_k_regular(graph, k), (n, k)

    benchmark(lambda: regularity_table(5, 2 * 5 + SPAN))

    report(
        "t5_regularity",
        render_table(
            ["k", "jd regular", "k-tree regular", "k-diamond regular", "k-diamond only"],
            rows,
            title=f"T5: k-regular sizes per rule over n in [2k, 2k+{SPAN}]",
        ),
    )
