"""Experiment T6 — broadcast throughput under finite link bandwidth.

One-shot latency (F2) ignores contention.  Here links are
store-and-forward (one message per service time, FIFO queueing) and the
source floods a burst of M messages.  Shape result — honestly reported:

* the **latency term** of the makespan keeps the LHG's full O(log n)
  vs Θ(n/k) advantage;
* the **pipelining term** is ~1 service time per extra message on
  *both* topologies (each link serialises the stream), so sustained
  throughput converges to the link bandwidth — the LHG wins bursts and
  time-to-last-delivery, not asymptotic messages/second.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_broadcast_stream
from repro.flooding.network import BandwidthLatency
from repro.graphs.generators.harary import harary_graph

K = 4
SIZES = (64, 256)
BURSTS = (1, 8, 32)


def test_t6_throughput(benchmark, report):
    rows = []
    for n in SIZES:
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        for burst in BURSTS:
            lhg_makespan, lhg_cov, _ = run_broadcast_stream(
                lhg, lhg.nodes()[0], burst, latency=BandwidthLatency(1.0, 0.1)
            )
            harary_makespan, harary_cov, _ = run_broadcast_stream(
                harary, 0, burst, latency=BandwidthLatency(1.0, 0.1)
            )
            assert lhg_cov and harary_cov
            rows.append(
                (
                    n,
                    burst,
                    round(lhg_makespan, 1),
                    round(harary_makespan, 1),
                    round(harary_makespan / lhg_makespan, 2),
                )
            )

    # shape: the advantage is the latency term; the per-message
    # pipelining increment is ~= 1 service on both topologies
    by_key = {(r[0], r[1]): r for r in rows}
    for n in SIZES:
        lhg_increment = (by_key[(n, 32)][2] - by_key[(n, 1)][2]) / 31
        harary_increment = (by_key[(n, 32)][3] - by_key[(n, 1)][3]) / 31
        assert 0.8 <= lhg_increment <= 1.3
        assert 0.8 <= harary_increment <= 1.3
        # and the one-shot advantage persists at every burst size
        for burst in BURSTS:
            assert by_key[(n, burst)][4] > 1.25

    lhg, _ = build_lhg(SIZES[0], K)
    benchmark(
        lambda: run_broadcast_stream(
            lhg, lhg.nodes()[0], 8, latency=BandwidthLatency(1.0, 0.1)
        )
    )

    report(
        "t6_throughput",
        render_table(
            ["n", "burst", "lhg makespan", "harary makespan", "ratio"],
            rows,
            title=f"T6: M-message broadcast makespan under unit link bandwidth (k={K})",
        ),
    )
