"""Experiment F3 — reliability under crashes: coverage vs failure count.

The fault-tolerance cliff: deterministic flooding on a k-connected LHG
covers **every** reachable node for any f ≤ k−1 crashes (a guarantee,
asserted over all seeds), keeps near-full coverage past the cliff
because random k-subsets rarely form a cut, and the fragile
spanning-tree baseline decays from the very first crash.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import repeat_runs, run_flood, run_treecast
from repro.flooding.failures import random_crashes

N, K, SEEDS = 62, 4, 40


def test_f3_reliability(benchmark, report):
    graph, _ = build_lhg(N, K)
    source = graph.nodes()[0]

    def schedule_factory(crashes):
        def factory(seed):
            if crashes == 0:
                return None
            return random_crashes(graph, crashes, seed=seed, protect={source})

        return factory

    rows = []
    for crashes in range(0, 2 * K + 1):
        flood = repeat_runs(run_flood, graph, source, schedule_factory(crashes), SEEDS)
        tree = repeat_runs(run_treecast, graph, source, schedule_factory(crashes), SEEDS)
        rows.append(
            (
                crashes,
                round(flood.mean_delivery_ratio(), 4),
                round(flood.min_delivery_ratio(), 4),
                round(flood.full_coverage_fraction(), 4),
                round(tree.mean_delivery_ratio(), 4),
            )
        )
        if crashes <= K - 1:
            # the guarantee: k-1 crashes can never break coverage
            assert flood.min_delivery_ratio() == 1.0, crashes
        if crashes >= 1:
            assert tree.mean_delivery_ratio() < 1.0, crashes
    # graceful degradation beyond the cliff
    assert rows[-1][1] > 0.9

    one_schedule = random_crashes(graph, K - 1, seed=0, protect={source})
    benchmark(lambda: run_flood(graph, source, failures=one_schedule))

    report(
        "f3_reliability",
        render_table(
            [
                "crashes",
                "flood mean",
                "flood min",
                "flood full-cov frac",
                "treecast mean",
            ],
            rows,
            title=f"F3: delivery ratio vs crashes — LHG(n={N}, k={K}), {SEEDS} seeds",
        ),
    )
