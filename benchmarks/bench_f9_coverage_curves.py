"""Experiment F9 — coverage-over-time curves: exponential vs linear spread.

The completion-time tables (F2) hide the *shape* of dissemination.  On
a log-diameter LHG the covered set multiplies by ~(k−1) each hop
(exponential phase, then saturation); on the Harary circulant it grows
by a constant ~2⌊k/2⌋ nodes per hop (linear).  This experiment renders
both curves at a fixed n and asserts the shape: the LHG reaches 50%
coverage in a small constant number of hops while the circulant needs
Θ(n/k) hops.
"""

from __future__ import annotations

import math

from repro.analysis.curves import ascii_curves, coverage_curve, time_to_fraction
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_flood
from repro.graphs.generators.harary import harary_graph

N, K = 254, 4


def test_f9_coverage_curves(benchmark, report):
    lhg, _ = build_lhg(N, K)
    harary = harary_graph(K, N)
    lhg_run = run_flood(lhg, lhg.nodes()[0])
    harary_run = run_flood(harary, 0)
    assert lhg_run.fully_covered and harary_run.fully_covered

    lhg_half = time_to_fraction(lhg_run, 0.5)
    harary_half = time_to_fraction(harary_run, 0.5)
    # exponential spread: 50% within ~log_{k-1}(n) hops
    assert lhg_half <= 2 * math.log(N, K - 1) + 2
    # linear spread: 50% needs on the order of n/(4*floor(k/2)) hops
    assert harary_half >= N / (8 * (K // 2))
    assert harary_half / lhg_half > 4

    plot = ascii_curves(
        [
            ("lhg", coverage_curve(lhg_run, buckets=40)),
            ("harary", coverage_curve(harary_run, buckets=40)),
        ],
        width=64,
        height=14,
    )
    summary = (
        f"F9: coverage vs time, n={N}, k={K}\n"
        f"time to 50%: lhg={lhg_half:g}, harary={harary_half:g}; "
        f"time to 100%: lhg={lhg_run.completion_time:g}, "
        f"harary={harary_run.completion_time:g}\n\n" + plot
    )

    benchmark(lambda: coverage_curve(run_flood(lhg, lhg.nodes()[0]), buckets=40))

    report("f9_coverage_curves", summary)
