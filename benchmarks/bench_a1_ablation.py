"""Experiment A1 — ablation: what each construction ingredient buys.

Three design choices the constructions make, each ablated at matched
(n, k):

1. **k pasted copies vs one tree** — a single tree of the same size is
   1-connected: one crash partitions it.  The pasting is what buys
   Properties 1–2.
2. **tree pasting vs plain circulant (Harary)** — same edge budget, but
   linear diameter.  The tree shape is what buys Property 4.
3. **unshared cliques (K-DIAMOND) vs added leaves (K-TREE)** at the
   K-DIAMOND-only regular sizes — identical n and connectivity, but the
   clique variant saves edges (k-regular) where K-TREE over-provisions.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.kdiamond import kdiamond_graph, kdiamond_only_regular_sizes
from repro.core.ktree import ktree_graph
from repro.core.existence import build_lhg
from repro.graphs.connectivity import node_connectivity
from repro.graphs.generators.classic import balanced_tree
from repro.graphs.generators.harary import harary_graph
from repro.graphs.traversal import diameter

K = 4
N = 194  # a K-DIAMOND regular point for k=4 (194 = 8 + 62*3)


def test_a1_ablation(benchmark, report):
    rows = []

    # 1. pasting vs a single tree of comparable size
    lhg, _ = build_lhg(N, K)
    tree = balanced_tree(K - 1, 4)  # 121 nodes, same branching
    rows.append(
        ("lhg", lhg.number_of_nodes(), lhg.number_of_edges(),
         node_connectivity(lhg), diameter(lhg))
    )
    rows.append(
        ("single tree", tree.number_of_nodes(), tree.number_of_edges(),
         node_connectivity(tree), diameter(tree))
    )
    assert node_connectivity(lhg) == K
    assert node_connectivity(tree) == 1

    # 2. tree pasting vs circulant at the same (n, k)
    harary = harary_graph(K, N)
    rows.append(
        ("harary", harary.number_of_nodes(), harary.number_of_edges(),
         K, diameter(harary))
    )
    assert diameter(lhg) * 4 < diameter(harary)
    assert abs(harary.number_of_edges() - lhg.number_of_edges()) <= N

    # 3. unshared cliques vs added leaves at K-DIAMOND-only points
    for n in kdiamond_only_regular_sizes(K, 40):
        diamond, _ = kdiamond_graph(n, K)
        ktree, _ = ktree_graph(n, K)
        rows.append(
            (f"k-diamond n={n}", n, diamond.number_of_edges(),
             node_connectivity(diamond), diameter(diamond))
        )
        rows.append(
            (f"k-tree    n={n}", n, ktree.number_of_edges(),
             node_connectivity(ktree), diameter(ktree))
        )
        assert diamond.number_of_edges() < ktree.number_of_edges(), n

    benchmark(lambda: build_lhg(N, K))

    report(
        "a1_ablation",
        render_table(
            ["variant", "n", "edges", "kappa", "diameter"],
            rows,
            title=f"A1: design-choice ablation (k={K})",
        ),
    )
