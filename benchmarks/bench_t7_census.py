"""Experiment T7 — exhaustive LHG census at tiny sizes.

How much of the LHG space does the tree-pasting construction reach?
For sizes where every connected k-regular graph can be enumerated
exactly, the census classifies each isomorphism class as LHG / not and
marks whether the construction family produces it.  Headline: already
at (6, 3) the space holds two LHGs — K_{3,3} (built) and the triangular
prism (never built) — so the constructions realise a *proper subset* of
the minimal-topology space, trading completeness for an O(n) recipe
that exists at every n ≥ 2k.
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.enumeration import (
    construction_reaches,
    enumerate_k_regular_graphs,
    lhg_census,
)

CASES = [(4, 2), (6, 2), (6, 3), (8, 3), (8, 4)]


def test_t7_census(benchmark, report):
    rows = []
    for n, k in CASES:
        total = len(enumerate_k_regular_graphs(n, k))
        lhgs, non_lhgs = lhg_census(n, k)
        reached = sum(1 for g in lhgs if construction_reaches(g, k))
        rows.append((n, k, total, len(lhgs), len(non_lhgs), reached))
        # every k-regular connected graph this small is edge-minimal by
        # construction; the non-LHGs (if any) fail connectivity level
        assert len(lhgs) + len(non_lhgs) == total
        # the construction reaches at least one LHG whenever one exists
        if lhgs:
            assert reached >= 1

    by_pair = {(r[0], r[1]): r for r in rows}
    # known values pinned
    assert by_pair[(6, 3)][2:] == (2, 2, 0, 1)  # 2 cubic, both LHG, 1 reached
    assert by_pair[(8, 3)][2] == 5  # the 5 connected cubic graphs on 8

    benchmark(lambda: enumerate_k_regular_graphs(6, 3))

    report(
        "t7_census",
        render_table(
            ["n", "k", "regular classes", "LHGs", "non-LHGs", "reached by construction"],
            rows,
            title="T7: exhaustive census of connected k-regular graphs",
        ),
    )
