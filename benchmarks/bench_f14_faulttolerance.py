"""Experiment F14 — fault-tolerant execution: recovery without drift.

Runs the chaos-campaign grid on LHG(n=128, k=4) under a deterministic
crash injector that makes workers exit, hang or raise on a growing
fraction of attempts (0% / 10% / 20% / 40%), and measures two things:

* **Correctness**: every supervised run's resilience matrix — however
  many workers were killed, hung past their timeout or crashed mid-cell
  — must be *byte-identical* to the fault-free serial matrix, with no
  quarantined cells.  Asserted unconditionally.
* **Cost**: the supervision overhead at zero fault rate (supervised vs
  bare pool) and the recovery wall-time curve as the injection rate
  climbs, written to ``results/BENCH_faulttolerance.json`` together
  with retry/timeout/worker-death counters and a checkpoint-resume
  probe (journal half the grid, resume, compare).

Speedup numbers are hardware-bound and not asserted; the recovery
*shape* (results identical, faults actually injected and survived) is
the experiment.
"""

from __future__ import annotations

import os
import pathlib

from repro.perf import emit_bench
from repro.exec import (
    GRAPH_CACHE,
    CrashInjector,
    SupervisorConfig,
    TopologySpec,
    fork_available,
)
from repro.robustness import ChaosCampaign

N, K = 128, 4
SEEDS = (0, 1)
FAULT_RATES = (0.0, 0.1, 0.2, 0.4)
WORKERS = 4
TIMEOUT = 4.0
RETRIES = 12

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _campaign() -> ChaosCampaign:
    spec = TopologySpec(N, K)
    return ChaosCampaign([(spec.label, spec)], seeds=SEEDS)


def _supervisor(rate: float) -> SupervisorConfig:
    return SupervisorConfig(
        timeout=TIMEOUT,
        retries=RETRIES,
        backoff_base=0.01,
        fault_hook=CrashInjector(rate=rate, seed=14, hang_seconds=60.0)
        if rate
        else None,
    )


def test_f14_fault_tolerance(benchmark, report, tmp_path):
    GRAPH_CACHE.clear()

    baseline_campaign = _campaign()
    baseline = baseline_campaign.run()  # fault-free, unsupervised, serial
    assert baseline.all_green, baseline.violations
    rendered = baseline.render()
    cells = len(baseline.cells)

    bare_wall = baseline_campaign.last_report.wall_seconds

    curve = []
    for rate in FAULT_RATES:
        campaign = _campaign()
        matrix = campaign.run(workers=WORKERS, supervisor=_supervisor(rate))
        run_report = campaign.last_report
        # recovery must be invisible in the science
        assert matrix.cells == baseline.cells, f"drift at rate={rate}"
        assert matrix.render() == rendered, f"drift at rate={rate}"
        assert not matrix.failures, f"quarantine at rate={rate}"
        if rate and fork_available():
            faults_survived = (
                run_report.retries
                + run_report.timeouts
                + run_report.worker_deaths
            )
            assert faults_survived > 0, f"no faults fired at rate={rate}"
        curve.append(
            {
                "fault_rate": rate,
                "mode": run_report.mode,
                "wall_seconds": round(run_report.wall_seconds, 4),
                "overhead_vs_bare": round(
                    run_report.wall_seconds / bare_wall, 3
                )
                if bare_wall
                else None,
                "retries": run_report.retries,
                "timeouts": run_report.timeouts,
                "worker_deaths": run_report.worker_deaths,
                "quarantined": len(run_report.failures),
            }
        )

    # checkpoint-resume probe: journal a full run, drop half the lines,
    # resume, and require the identical matrix with no recomputation drift
    journal = tmp_path / "f14.jsonl"
    _campaign().run(checkpoint=journal)
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[: len(lines) // 2]))
    resumed = _campaign().run(checkpoint=journal, resume=True)
    assert resumed.render() == rendered
    resume_ok = journal.read_text().count("\n") == cells

    payload = {
        "topology": {"n": N, "k": K},
        "grid": {"seeds": len(SEEDS), "cells": cells},
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "workers": WORKERS,
        "timeout_seconds": TIMEOUT,
        "retries_budget": RETRIES,
        "bare_wall_seconds": round(bare_wall, 4),
        "deterministic_under_faults": True,
        "checkpoint_resume_identical": resume_ok,
        "curve": curve,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_faulttolerance.json",
        "f14_faulttolerance",
        {
            "bare_wall_seconds": [bare_wall],
            "supervised_wall_seconds": [curve[0]["wall_seconds"]],
        },
        payload=payload,
    )

    lines = [
        f"F14: fault-tolerant engine — LHG(n={N}, k={K}), {cells} cells, "
        f"{os.cpu_count()} core(s), timeout {TIMEOUT}s, {RETRIES} retries"
    ]
    for point in curve:
        lines.append(
            f"  rate={point['fault_rate']:.0%}: {point['wall_seconds']:.2f}s "
            f"({point['mode']}, {point['retries']} retries, "
            f"{point['timeouts']} timeouts, {point['worker_deaths']} deaths, "
            f"overhead {point['overhead_vs_bare']}x)"
        )
    lines.append(f"  checkpoint resume identical: {resume_ok}")
    report("f14_faulttolerance", "\n".join(lines))

    # time one supervised fault-free grid pass as the benchmark sample
    benchmark(
        lambda: _campaign().run(workers=1, supervisor=_supervisor(0.0))
    )
