"""Experiment F16 — soak service: SLOs under churn with online repair.

Runs a short deterministic soak of the long-running overlay service —
LHG(n=20, k=3) under Poisson churn, a Zipf-source flood workload and
two forced crash bursts beyond k−1 — and records the service-level
numbers the paper's resilience story turns into operationally:

* **flood latency** p50/p99/p999 in hops, healthy vs degraded;
* **degradation windows** — each forced burst must open exactly one
  window (graceful, never a crash) and close it by re-verifying
  Properties 1–4 after repair;
* **repair convergence** — ticks from degradation entry to the passing
  re-verification;
* **message amplification** — messages per covered member;
* a **kill-resume probe**: truncate the tick journal mid-run, resume,
  and require the byte-identical SLO report.

Shape assertions: the service ends ``healthy``, every degradation
window closed, no invariant check ever failed, and resume is exact.
Written to ``results/BENCH_soak.json``.
"""

from __future__ import annotations

import os
import pathlib
import time

from repro.perf import emit_bench
from repro.service import SoakConfig, run_soak

N, K = 20, 3
DURATION = 150
BURSTS = ((40, 3), (90, 4))  # both beyond k-1: forced degradation
CONFIG = SoakConfig(
    population=N,
    k=K,
    duration=DURATION,
    churn_rate=0.5,
    flood_rate=2.0,
    verify_every=25,
    bursts=BURSTS,
    seed=16,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def test_f16_soak(benchmark, report, tmp_path):
    walls = []
    for _ in range(3):
        t0 = time.perf_counter()
        soak = run_soak(CONFIG)
        walls.append(time.perf_counter() - t0)
    payload = soak.payload

    # the service degraded gracefully — once per forced burst — and
    # proved each recovery by re-verifying Properties 1-4
    windows = payload["degradation"]["windows"]
    assert payload["final_state"] == "healthy"
    assert len(windows) >= len(BURSTS)
    assert all(w["end"] is not None for w in windows)
    assert {w["start"] for w in windows} >= {t for t, _ in BURSTS}
    assert payload["verify"]["runs"] > 0
    assert payload["verify"]["failures"] == 0
    assert soak.violations() == []

    # the workload was real: floods completed every few ticks and the
    # latency histogram has a defined tail
    assert payload["floods"]["completed"] > DURATION
    latency = payload["latency"]
    assert 0 < latency["p50"] <= latency["p99"] <= latency["p999"]
    assert payload["amplification"]["mean"] > 1.0

    # burn-rate alerts: each forced burst beyond k-1 opens an alert
    # whose open/close brackets its degradation window
    alerts = payload["alerts"]["events"]
    assert len(alerts) >= len(BURSTS)
    for window in windows:
        covering = [
            a
            for a in alerts
            if a["opened"] <= window["start"]
            and a["closed"] is not None
            and a["closed"] >= window["end"]
        ]
        assert covering, (window, alerts)

    # kill-resume probe: journal the soak, truncate to a third, resume,
    # and require the byte-identical report
    journal = tmp_path / "f16.jsonl"
    run_soak(CONFIG, checkpoint=journal)
    lines = journal.read_text().splitlines(keepends=True)
    journal.write_text("".join(lines[: len(lines) // 3]))
    resumed = run_soak(CONFIG, checkpoint=journal, resume=True)
    resume_ok = resumed.to_json() == soak.to_json()
    assert resume_ok

    out = {
        "topology": {"n": N, "k": K},
        "config": payload["config"],
        "cpu_count": os.cpu_count(),
        "final_state": payload["final_state"],
        "latency_hops": latency,
        "amplification": payload["amplification"],
        "floods": payload["floods"],
        "churn": payload["churn"],
        "repair": payload["repair"],
        "degradation": payload["degradation"],
        "alerts": payload["alerts"],
        "verify": payload["verify"],
        "checkpoint_resume_identical": resume_ok,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    emit_bench(
        RESULTS_DIR / "BENCH_soak.json",
        "f16_soak",
        {
            "soak_wall_seconds": walls,
            "latency_p99_hops": [latency["p99"]],
            "amplification_mean": [payload["amplification"]["mean"]],
        },
        payload=out,
        units={"latency_p99_hops": "hops", "amplification_mean": "ratio"},
    )

    lines = [
        f"F16: soak service — LHG(n={N}, k={K}), {DURATION} ticks, "
        f"{len(BURSTS)} forced burst(s) beyond k-1",
        f"  floods   : {payload['floods']['completed']} completed, "
        f"{payload['floods']['shed']} shed, "
        f"{payload['floods']['partial']} partial",
        f"  latency  : p50={latency['p50']:g} p99={latency['p99']:g} "
        f"p999={latency['p999']:g} hops",
        f"  amplify  : mean={payload['amplification']['mean']:.2f} "
        f"msgs/covered",
        f"  churn    : {payload['churn']['joins']} joins, "
        f"{payload['churn']['crashes']} crashes",
        f"  repair   : {payload['repair']['episodes']} episodes, "
        f"{payload['repair']['restarts']} restarts, "
        f"{payload['repair']['emergency']} emergency",
        f"  degraded : {payload['degradation']['count']} window(s), "
        f"{payload['degradation']['degraded_ticks']} tick(s); "
        f"convergence p50={payload['repair']['convergence']['p50']:g} "
        f"max={payload['repair']['convergence']['max']:g}",
        f"  verify   : {payload['verify']['runs']} runs, "
        f"{payload['verify']['failures']} failures",
        f"  kill-resume byte-identical: {resume_ok}",
    ]
    report("f16_soak", "\n".join(lines))

    # time one full soak pass as the benchmark sample
    benchmark(lambda: run_soak(CONFIG))
