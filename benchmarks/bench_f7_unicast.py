"""Experiment F7 — unicast under failures: one path vs k disjoint paths.

Point-to-point delivery over the same fault-tolerant topology.  A
single source-routed path dies with any crash it contains; launching
the message along the construction's k internally node-disjoint paths
(the Menger witness) makes delivery **guaranteed** for any f ≤ k−1
crashes at ~k× the message cost.  The table sweeps the crash count and
reports delivery rate and message bill for both strategies.
"""

from __future__ import annotations

import random

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.core.routing import menger_witness, tree_route
from repro.flooding.experiments import run_redundant_unicast, run_unicast
from repro.flooding.failures import random_crashes

N, K, SEEDS, PAIRS = 46, 4, 25, 6


def test_f7_unicast(benchmark, report):
    graph, cert = build_lhg(N, K)
    rng = random.Random(7)
    nodes = graph.nodes()
    endpoint_pairs = [tuple(rng.sample(nodes, 2)) for _ in range(PAIRS)]
    witnesses = {
        (s, t): menger_witness(graph, cert, s, t) for s, t in endpoint_pairs
    }
    routes = {(s, t): tree_route(cert, s, t) for s, t in endpoint_pairs}

    rows = []
    for crashes in range(0, K + 1):
        single_ok = 0
        redundant_ok = 0
        single_msgs = 0
        redundant_msgs = 0
        trials = 0
        for (s, t), paths in witnesses.items():
            for seed in range(SEEDS):
                schedule = (
                    random_crashes(graph, crashes, seed=seed, protect={s, t})
                    if crashes
                    else None
                )
                delivered, hops = run_unicast(
                    graph, routes[(s, t)], failures=schedule
                )
                single_ok += delivered is not None
                single_msgs += hops
                delivered_r, _, msgs = run_redundant_unicast(
                    graph, paths, failures=schedule
                )
                redundant_ok += delivered_r is not None
                redundant_msgs += msgs
                trials += 1
        rows.append(
            (
                crashes,
                round(single_ok / trials, 3),
                round(redundant_ok / trials, 3),
                round(single_msgs / trials, 1),
                round(redundant_msgs / trials, 1),
            )
        )
        if crashes <= K - 1:
            # the structural guarantee: k disjoint paths beat k-1 crashes
            assert redundant_ok == trials, crashes
    # single-path delivery decays once crashes appear
    assert rows[-1][1] < 1.0
    # redundancy costs roughly k single paths
    assert rows[0][4] <= K * rows[0][3] * 2.5

    s, t = endpoint_pairs[0]
    benchmark(lambda: run_redundant_unicast(graph, witnesses[(s, t)]))

    report(
        "f7_unicast",
        render_table(
            [
                "crashes",
                "single-path delivery",
                "k-path delivery",
                "single msgs",
                "k-path msgs",
            ],
            rows,
            title=(
                f"F7: unicast delivery vs crashes — LHG(n={N}, k={K}), "
                f"{PAIRS} pairs x {SEEDS} seeds"
            ),
        ),
    )
