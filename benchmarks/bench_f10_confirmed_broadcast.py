"""Experiment F10 — confirmed broadcast: wave + echo round trip.

Flooding delivers; the echo (PIF) pattern additionally *confirms*
global delivery at the source and folds an aggregate on the way back.
The round trip costs ~2× the eccentricity, so the LHG's logarithmic
depth pays twice: at n = 510, confirmation completes in 22 time units
on the LHG vs hundreds on the Harary circulant.  The table also checks
the aggregate (a full node count) and the message bill: between 2 and 4
messages per link (a link crossed by one wave carries wave + echo or
wave + decline; concurrent waves in both directions add their declines).
"""

from __future__ import annotations

from repro.analysis.tables import render_table
from repro.core.existence import build_lhg
from repro.flooding.experiments import run_echo
from repro.graphs.generators.harary import harary_graph
from repro.graphs.traversal import eccentricity

K = 4
SIZES = (62, 254, 510)


def _measure(graph, source):
    from repro.flooding.network import Network
    from repro.flooding.protocols.echo import EchoProtocol
    from repro.flooding.simulator import Simulator

    simulator = Simulator()
    network = Network(graph, simulator)
    protocol = EchoProtocol(network, source)
    network.attach(protocol, start_nodes=[source])
    simulator.run()
    return protocol, network.stats.messages_sent


def test_f10_confirmed_broadcast(benchmark, report):
    rows = []
    for n in SIZES:
        lhg, _ = build_lhg(n, K)
        harary = harary_graph(K, n)
        lhg_src = lhg.nodes()[0]
        lhg_protocol, lhg_msgs = _measure(lhg, lhg_src)
        harary_protocol, harary_msgs = _measure(harary, 0)
        assert lhg_protocol.completed and harary_protocol.completed
        assert lhg_protocol.aggregate == n == harary_protocol.aggregate
        rows.append(
            (
                n,
                lhg_protocol.completed_at,
                harary_protocol.completed_at,
                round(harary_protocol.completed_at / lhg_protocol.completed_at, 1),
                lhg_msgs,
            )
        )
        # round trip ~ 2 x eccentricity (+ a couple of decline bounces)
        ecc = eccentricity(lhg, lhg_src)
        assert 2 * ecc <= lhg_protocol.completed_at <= 2 * ecc + 4
        # message bill: 2..4 messages per link
        assert 2 * lhg.number_of_edges() <= lhg_msgs <= 4 * lhg.number_of_edges()

    # the advantage compounds with n
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > 8

    lhg, _ = build_lhg(SIZES[0], K)
    source = lhg.nodes()[0]
    benchmark(lambda: run_echo(lhg, source))

    report(
        "f10_confirmed_broadcast",
        render_table(
            ["n", "lhg round trip", "harary round trip", "ratio", "lhg msgs"],
            rows,
            title=f"F10: confirmed broadcast (wave+echo) completion time (k={K})",
        ),
    )
